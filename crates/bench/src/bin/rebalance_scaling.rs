//! **Extension E-X5** — dynamic rebalancing at acceptance scale.
//!
//! Replays the 50-step AMR-hotspot trajectory at the paper's production
//! point (Ne = 16, K = 1536, 64 processors) through the `balance`
//! subsystem twice — once with the incremental SFC rebalancer that
//! re-splits the fixed global curve, once with a from-scratch METIS-KWAY
//! recompute (fresh seed each step, as an AMR code with no memory of the
//! previous partition would run) — and checks the acceptance criteria:
//!
//! 1. per-step load imbalance of the incremental SFC stays within
//!    0.10 of the KWAY recompute, and
//! 2. cumulative matched migration of the SFC path is below 25 % of the
//!    recompute baseline's.
//!
//! Exits nonzero if either criterion is violated, so CI can pin it.
//!
//! ```text
//! cargo run -p cubesfc-bench --release --bin rebalance_scaling
//! ```

use cubesfc::balance::{
    run_rebalance, IncrementalSfc, LoadModel, RebalancePolicy, Repartitioner, SimConfig, SimReport,
    TrajectoryKind,
};
use cubesfc::{
    CostModel, MachineModel, MeshCache, MethodRepartitioner, PartitionMethod, PartitionOptions,
};

const NE: usize = 16;
const NPROC: usize = 64;
const STEPS: usize = 50;
const SEED: u64 = 42;
const LB_SLACK: f64 = 0.10;
const MIGRATION_RATIO_CEILING: f64 = 0.25;

fn replay(method: PartitionMethod) -> SimReport {
    let cache = MeshCache::new();
    let bundle = cache.bundle(NE);
    let kind = TrajectoryKind::named("amr", STEPS).unwrap();
    let model = LoadModel::from_mesh(&bundle.mesh, kind);
    let config = SimConfig {
        steps: STEPS,
        nproc: NPROC,
        machine: MachineModel::ncar_p690(),
        cost: CostModel::seam_climate(),
        faults: None,
        resume: None,
    };
    // Rebalance every step: the regime where incrementality matters —
    // the recompute baseline pays a full reshuffle at each trigger while
    // the SFC path only slides segment boundaries.
    let policy = RebalancePolicy::Periodic { every: 1 };

    let mut opts = PartitionOptions::default();
    opts.graph_config.seed = SEED;
    let initial = cubesfc::partition(&bundle.mesh, method, NPROC, &opts).unwrap();
    let mut backend: Box<dyn Repartitioner> = match method {
        PartitionMethod::Sfc => Box::new(IncrementalSfc::new(
            bundle.mesh.curve_required().unwrap().clone(),
        )),
        m => Box::new(MethodRepartitioner::new(bundle.clone(), m, SEED).with_options(opts)),
    };
    run_rebalance(
        &bundle.graph,
        &model,
        backend.as_mut(),
        policy,
        initial,
        &config,
    )
    .unwrap()
}

fn main() {
    println!(
        "dynamic rebalancing, AMR hotspot trajectory (Ne={NE}, K={}, Nproc={NPROC}, {STEPS} steps)",
        6 * NE * NE
    );

    let sfc = replay(PartitionMethod::Sfc);
    let kway = replay(PartitionMethod::MetisKway);

    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "step", "LB sfc", "LB kway", "mv sfc", "mv kway"
    );
    let mut lb_violations = 0usize;
    for (s, k) in sfc.records.iter().zip(kway.records.iter()) {
        let flag = if s.lb_after > k.lb_after + LB_SLACK {
            lb_violations += 1;
            "  <-- LB gap"
        } else {
            ""
        };
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>10} {:>10}{}",
            s.step, s.lb_after, k.lb_after, s.moved_elems, k.moved_elems, flag
        );
    }

    let ratio = sfc.total_moved_elems() as f64 / kway.total_moved_elems().max(1) as f64;
    println!();
    println!(
        "triggers: sfc={} kway={}   mean LB: sfc={:.4} kway={:.4}",
        sfc.trigger_count(),
        kway.trigger_count(),
        sfc.mean_lb(),
        kway.mean_lb()
    );
    println!(
        "cumulative matched migration: sfc={} kway={} elems  (ratio {:.1}%, ceiling {:.0}%)",
        sfc.total_moved_elems(),
        kway.total_moved_elems(),
        ratio * 100.0,
        MIGRATION_RATIO_CEILING * 100.0
    );
    println!(
        "modelled wall time: sfc={:.3} s kway={:.3} s",
        sfc.modelled_total_seconds(),
        kway.modelled_total_seconds()
    );
    println!(
        "\nreading: both paths chase the same drifting hotspot, but the SFC\n\
         rebalancer only slides cut points along the fixed curve — the\n\
         recompute baseline re-derives its partition from scratch and pays\n\
         for it in migrated elements every single step."
    );

    let mut failed = false;
    if lb_violations > 0 {
        eprintln!("FAIL: {lb_violations} steps exceed the {LB_SLACK} per-step LB slack");
        failed = true;
    }
    if ratio >= MIGRATION_RATIO_CEILING {
        eprintln!(
            "FAIL: SFC migration ratio {:.3} is not below {MIGRATION_RATIO_CEILING}",
            ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nacceptance criteria satisfied");
}
