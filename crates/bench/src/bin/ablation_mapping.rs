//! **Ablation E-A4** — does the cube→sphere mapping choice interact with
//! partitioning?
//!
//! Under the paper's equidistant gnomonic projection, corner elements are
//! ~5× smaller than face-centre elements; under the equiangular mapping
//! (HOMME's choice) areas are near-uniform. Spectral element *cost* is
//! per-element (same node count everywhere), so partitions are unaffected
//! — but any cost model that charged by *area* (e.g. explicit-dt
//! limiting, physics grids) would interact with the curve's segment
//! placement. This binary quantifies the per-part area imbalance each
//! mapping induces on SFC partitions.
//!
//! ```text
//! cargo run -p cubesfc-bench --release --bin ablation_mapping
//! ```

use cubesfc::graph::load_balance;
use cubesfc::mesh::{FaceId, Mapping};
use cubesfc::{partition_default, CubedSphere, PartitionMethod};

fn part_area_lb(mesh: &CubedSphere, mapping: Mapping, nproc: usize) -> f64 {
    let ne = mesh.ne();
    let p = partition_default(mesh, PartitionMethod::Sfc, nproc).unwrap();
    let mut area = vec![0.0f64; nproc];
    for e in mesh.elems() {
        let (f, i, j) = mesh.locate(e);
        area[p.part_of(e.index())] += mapping.elem_area(FaceId(f.0), ne, i, j);
    }
    // Scale to integers for the shared LB helper.
    let scaled: Vec<u64> = area.iter().map(|a| (a * 1e9) as u64).collect();
    load_balance(&scaled)
}

fn main() {
    println!("per-part *area* imbalance of SFC partitions under each mapping");
    println!("(element-count balance is exact in every row — only area varies)\n");
    println!(
        "{:>4} {:>6} {:>6} | {:>14} {:>14}",
        "Ne", "K", "Nproc", "equidistant", "equiangular"
    );
    for ne in [8usize, 16] {
        let mesh = CubedSphere::new(ne);
        let k = mesh.num_elems();
        for nproc in [k / 16, k / 4, k / 2] {
            let lb_eq = part_area_lb(&mesh, Mapping::Equidistant, nproc);
            let lb_an = part_area_lb(&mesh, Mapping::Equiangular, nproc);
            println!(
                "{:>4} {:>6} {:>6} | {:>13.1}% {:>13.1}%",
                ne,
                k,
                nproc,
                lb_eq * 100.0,
                lb_an * 100.0
            );
        }
    }
    println!(
        "\nreading: element-granular SFC partitioning is mapping-agnostic for\n\
         SEM cost (per-element work is constant), but any area-proportional\n\
         cost would suffer up to tens of percent imbalance on the paper's\n\
         equidistant grid — and almost none on the equiangular grid."
    );
}
