//! `trace_analyze` — smoke-run the trace replay analyzer on a modelled
//! rebalance timeline (`BENCH_analysis.json`).
//!
//! ```text
//! cargo run -p cubesfc-bench --release --bin trace_analyze [OUT.json]
//! ```
//!
//! Records the seed-42 fault-trajectory rebalance (Ne = 8, 16 ranks,
//! 10 steps, a periodic policy that never fires so the rank slowdown
//! stays uncorrected), replays the resulting `cubesfc-trace-v1`
//! timeline through the wait-state / critical-path analyzer, and
//! writes the `cubesfc-analysis-v1` document to `OUT.json` (default
//! `BENCH_analysis.json`). The analyzer is run twice and the two
//! documents compared byte-for-byte, so this bin doubles as a
//! determinism check on the whole trace → analysis path. The
//! human-readable report goes to stderr.

use cubesfc::balance::{
    run_rebalance, IncrementalSfc, LoadModel, RebalancePolicy, Repartitioner, SimConfig,
    TrajectoryKind,
};
use cubesfc::{partition, CostModel, MachineModel, MeshCache, PartitionMethod, PartitionOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_analysis.json".into());
    match run(&path) {
        Ok(lanes) => {
            println!("(trace analysis over {lanes} lane(s) written to {path})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(path: &str) -> Result<usize, String> {
    let steps = 10;
    let nproc = 16;
    cubesfc_obs::set_trace_enabled(true);

    let cache = MeshCache::new();
    let bundle = cache.bundle(8);
    let kind = TrajectoryKind::named("fault", steps).expect("fault trajectory");
    let model = LoadModel::from_mesh(&bundle.mesh, kind);
    let config = SimConfig {
        steps,
        nproc,
        machine: MachineModel::ncar_p690(),
        cost: CostModel::seam_climate(),
        faults: None,
        resume: None,
    };
    let mut policy = RebalancePolicy::named("periodic").expect("periodic policy");
    if let RebalancePolicy::Periodic { every } = &mut policy {
        *every = 1000; // longer than the run: the fault stays in place
    }
    let mut opts = PartitionOptions::default();
    opts.graph_config.seed = 42;
    let initial =
        partition(&bundle.mesh, PartitionMethod::Sfc, nproc, &opts).map_err(|e| e.to_string())?;
    let mut backend: Box<dyn Repartitioner> = Box::new(IncrementalSfc::new(
        bundle
            .mesh
            .curve_required()
            .map_err(|e| e.to_string())?
            .clone(),
    ));
    run_rebalance(
        &bundle.graph,
        &model,
        backend.as_mut(),
        policy,
        initial,
        &config,
    )
    .map_err(|e| e.to_string())?;

    let trace = cubesfc_obs::tracer().export_chrome();
    cubesfc_obs::set_trace_enabled(false);

    let (alpha_s, beta_bytes_per_s) = MachineModel::ncar_p690().alpha_beta();
    let cfg = cubesfc_obs::AnalyzeConfig {
        comm: cubesfc_obs::CommModel {
            alpha_s,
            beta_bytes_per_s,
        },
    };
    let analysis = cubesfc_obs::analyze_trace(&trace, &cfg)?;
    let again = cubesfc_obs::analyze_trace(&trace, &cfg)?;
    let json = analysis.to_json();
    if json != again.to_json() {
        return Err("analysis JSON is not deterministic".into());
    }
    eprint!("{}", analysis.render());
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    Ok(analysis.lanes.len())
}
