//! The telemetry sampler: periodic snapshots of the metrics registry as
//! a streaming time series, with derived health signals and alerting.
//!
//! A [`Sampler`] turns the *cumulative* metrics the registry collects
//! (counters, log2 histograms) plus caller-provided per-step gauges and
//! per-rank values into a sequence of [`TelemetrySample`]s:
//!
//! * counters are **delta-encoded** (each sample carries the increment
//!   since the previous sample, so a stream consumer never needs the
//!   whole history);
//! * histograms are distilled to p50/p95/p99 via
//!   [`HistogramSnapshot::quantile`](crate::HistogramSnapshot::quantile);
//! * derived health gauges are appended — `straggler_z` (worst rank's
//!   z-score against the rank ensemble) and `lb_drift` (Eq. 1 load
//!   balance relative to the lane's first sample);
//! * an [`AlertEngine`] evaluates threshold+hysteresis+min-duration
//!   rules and stamps fired rule names into the sample.
//!
//! Samples live in bounded ring buffers ([`crate::series`]) with an
//! exact `dropped_samples` counter, and export as the streaming NDJSON
//! protocol **`cubesfc-telemetry-v1`**: one JSON object per line, every
//! line independently parseable by [`crate::json_parse`]. Lines carry no
//! wall-clock timestamps — the sequence number and caller step are the
//! time axis — so a deterministic run produces byte-identical streams.
//!
//! Like [`Registry`](crate::Registry) and [`Tracer`](crate::Tracer),
//! explicit `Sampler` instances always record; the process-global
//! sampler behind [`crate::telemetry_record`] is gated by a flag bit and
//! costs one relaxed atomic load (and allocates nothing) when off.

use crate::clock::{Clock, MonotonicClock};
use crate::health::{default_rules, straggler_z, AlertEngine, AlertRule};
use crate::json::escape;
use crate::render::{sparkline, sparkline_scaled};
use crate::series::{Ring, Series};
use crate::value::JsonValue;
use crate::Registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Schema tag carried by every NDJSON line.
pub const TELEMETRY_SCHEMA: &str = "cubesfc-telemetry-v1";

/// Default sample-window capacity of the global sampler.
pub(crate) const DEFAULT_SAMPLE_CAPACITY: usize = 1 << 14;

/// Sparkline width used by the terminal summary.
const SPARK_WIDTH: usize = 48;

/// At most this many per-rank sparkline rows per lane; the summary says
/// how many were elided (never a silent cap).
const MAX_RANK_ROWS: usize = 32;

/// One telemetry sample: everything observed at one sampling point.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// Global sample sequence number (all lanes share one sequence).
    pub seq: u64,
    /// The emitting lane (`rebalance`, `solver`, `experiment`, …).
    pub lane: String,
    /// The caller's step index (timestep, cell index, …).
    pub step: u64,
    /// Instantaneous gauges: caller-provided plus derived health
    /// signals (`straggler_z`, `lb_drift`).
    pub gauges: BTreeMap<String, f64>,
    /// Counter *deltas* since the previous sample (zero deltas elided).
    pub counters: BTreeMap<String, u64>,
    /// Per-histogram `[p50, p95, p99]` of the cumulative distribution.
    pub quantiles: BTreeMap<String, [f64; 3]>,
    /// Per-rank values backing `straggler_z` (e.g. compute seconds or
    /// weighted loads); empty when the caller has no rank ensemble.
    pub ranks: Vec<f64>,
    /// Names of alert rules that fired on this sample.
    pub alerts: Vec<String>,
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // json has no NaN/inf; readers map null back to NaN.
        "null".to_string()
    }
}

impl TelemetrySample {
    /// Serialize as one `cubesfc-telemetry-v1` NDJSON line (no trailing
    /// newline). Field and key order are fixed, so identical samples
    /// produce identical bytes.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"seq\":{},\"lane\":\"{}\",\"step\":{}",
            self.seq,
            escape(&self.lane),
            self.step
        );
        s.push_str(",\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", escape(k), fmt_f64(*v));
        }
        s.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", escape(k));
        }
        s.push_str("},\"quantiles\":{");
        for (i, (k, q)) in self.quantiles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":[{},{},{}]",
                escape(k),
                fmt_f64(q[0]),
                fmt_f64(q[1]),
                fmt_f64(q[2])
            );
        }
        s.push_str("},\"ranks\":[");
        for (i, v) in self.ranks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&fmt_f64(*v));
        }
        s.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", escape(a));
        }
        s.push_str("]}");
        s
    }

    /// Rebuild a sample from a parsed NDJSON line.
    pub fn from_json(doc: &JsonValue) -> Result<TelemetrySample, String> {
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing schema tag")?;
        if schema != TELEMETRY_SCHEMA {
            return Err(format!("schema {schema:?} is not {TELEMETRY_SCHEMA:?}"));
        }
        let num = |v: &JsonValue| match v {
            JsonValue::Null => Some(f64::NAN),
            other => other.as_f64(),
        };
        let mut sample = TelemetrySample {
            seq: doc
                .get("seq")
                .and_then(|v| v.as_u64())
                .ok_or("missing seq")?,
            lane: doc
                .get("lane")
                .and_then(|v| v.as_str())
                .ok_or("missing lane")?
                .to_string(),
            step: doc
                .get("step")
                .and_then(|v| v.as_u64())
                .ok_or("missing step")?,
            gauges: BTreeMap::new(),
            counters: BTreeMap::new(),
            quantiles: BTreeMap::new(),
            ranks: Vec::new(),
            alerts: Vec::new(),
        };
        if let Some(obj) = doc.get("gauges").and_then(|v| v.as_obj()) {
            for (k, v) in obj {
                sample.gauges.insert(
                    k.clone(),
                    num(v).ok_or_else(|| format!("gauge {k}: not a number"))?,
                );
            }
        }
        if let Some(obj) = doc.get("counters").and_then(|v| v.as_obj()) {
            for (k, v) in obj {
                sample.counters.insert(
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("counter {k}: not a u64"))?,
                );
            }
        }
        if let Some(obj) = doc.get("quantiles").and_then(|v| v.as_obj()) {
            for (k, v) in obj {
                let arr = v
                    .as_arr()
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| format!("quantiles {k}: not a 3-array"))?;
                let mut q = [0.0; 3];
                for (slot, item) in q.iter_mut().zip(arr) {
                    *slot = num(item).ok_or_else(|| format!("quantiles {k}: not a number"))?;
                }
                sample.quantiles.insert(k.clone(), q);
            }
        }
        if let Some(arr) = doc.get("ranks").and_then(|v| v.as_arr()) {
            for item in arr {
                sample.ranks.push(num(item).ok_or("ranks: not a number")?);
            }
        }
        if let Some(arr) = doc.get("alerts").and_then(|v| v.as_arr()) {
            for item in arr {
                sample
                    .alerts
                    .push(item.as_str().ok_or("alerts: not a string")?.to_string());
            }
        }
        Ok(sample)
    }
}

/// Parse a whole `cubesfc-telemetry-v1` NDJSON stream (blank lines
/// ignored). Errors carry the 1-based line number.
pub fn parse_telemetry(text: &str) -> Result<Vec<TelemetrySample>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = crate::value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(TelemetrySample::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Series bank: bounded per-metric history + summary rendering

/// Bounded per-metric history built from ingested samples; the live
/// sampler and the `telemetry report` replay both render through it, so
/// the on-line summary and the off-line one are the same code path.
#[derive(Debug)]
pub struct SeriesBank {
    capacity: usize,
    /// `lane/gauge` → history.
    gauges: BTreeMap<String, Series>,
    /// lane → one series per rank.
    ranks: BTreeMap<String, Vec<Series>>,
    /// Fire log: (rule, lane, step), bounded like everything else.
    alerts: Ring<(String, String, u64)>,
    total_alerts: u64,
    samples: u64,
}

impl SeriesBank {
    /// A bank whose series each retain `capacity` points.
    pub fn new(capacity: usize) -> SeriesBank {
        SeriesBank {
            capacity,
            gauges: BTreeMap::new(),
            ranks: BTreeMap::new(),
            alerts: Ring::new(capacity),
            total_alerts: 0,
            samples: 0,
        }
    }

    /// Fold one sample into the per-metric histories.
    pub fn ingest(&mut self, s: &TelemetrySample) {
        self.samples += 1;
        for (name, &v) in &s.gauges {
            self.gauges
                .entry(format!("{}/{}", s.lane, name))
                .or_insert_with(|| Series::new(self.capacity))
                .push(s.seq, v);
        }
        if !s.ranks.is_empty() {
            let rows = self.ranks.entry(s.lane.clone()).or_default();
            if rows.len() < s.ranks.len() {
                rows.resize_with(s.ranks.len(), || Series::new(self.capacity));
            }
            for (r, &v) in s.ranks.iter().enumerate() {
                rows[r].push(s.seq, v);
            }
        }
        for a in &s.alerts {
            self.total_alerts += 1;
            self.alerts.push((a.clone(), s.lane.clone(), s.step));
        }
    }

    /// Total alerts across all ingested samples.
    pub fn total_alerts(&self) -> u64 {
        self.total_alerts
    }

    /// Render the fixed-width terminal summary: per-gauge statistics
    /// with trend sparklines, per-rank rows on a shared scale, and the
    /// alert log.
    pub fn render(&self, dropped_samples: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {} sample(s), {} dropped, lanes: {}",
            self.samples,
            dropped_samples,
            if self.ranks.is_empty() && self.gauges.is_empty() {
                "-".to_string()
            } else {
                let mut lanes: Vec<&str> = self
                    .gauges
                    .keys()
                    .filter_map(|k| k.split('/').next())
                    .collect();
                lanes.dedup();
                lanes.join(", ")
            }
        );
        if self.samples == 0 {
            return out;
        }

        if !self.gauges.is_empty() {
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>10} {:>10} {:>10}  trend",
                "gauge", "last", "min", "mean", "max"
            );
            for (name, series) in &self.gauges {
                let vals = series.values();
                let finite: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
                let (min, max, mean) = if finite.is_empty() {
                    (0.0, 0.0, 0.0)
                } else {
                    (
                        finite.iter().copied().fold(f64::INFINITY, f64::min),
                        finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        finite.iter().sum::<f64>() / finite.len() as f64,
                    )
                };
                let _ = writeln!(
                    out,
                    "{name:<34} {:>10.4} {:>10.4} {:>10.4} {:>10.4}  {}",
                    series.last(),
                    min,
                    mean,
                    max,
                    sparkline(&vals, SPARK_WIDTH)
                );
            }
        }

        for (lane, rows) in &self.ranks {
            // One shared scale across the lane's ranks, so a straggler
            // row visibly towers over its peers.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in rows {
                for v in s.values() {
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
            }
            if !lo.is_finite() || !hi.is_finite() {
                continue;
            }
            let shown = rows.len().min(MAX_RANK_ROWS);
            let _ = writeln!(
                out,
                "\nper-rank (lane {lane}, {} ranks, shared scale [{lo:.4}, {hi:.4}])",
                rows.len()
            );
            for (r, series) in rows.iter().take(shown).enumerate() {
                let _ = writeln!(
                    out,
                    "  rank {r:>4}  {}  last={:.4}",
                    sparkline_scaled(&series.values(), SPARK_WIDTH, lo, hi),
                    series.last()
                );
            }
            if shown < rows.len() {
                let _ = writeln!(
                    out,
                    "  ({} more rank(s) not shown; the NDJSON stream has them all)",
                    rows.len() - shown
                );
            }
        }

        if self.total_alerts == 0 {
            let _ = writeln!(out, "\nalerts: none fired");
        } else {
            let _ = writeln!(out, "\nalerts: {} fired", self.total_alerts);
            for (rule, lane, step) in self.alerts.iter() {
                let _ = writeln!(out, "  {rule:<20} lane={lane} step={step}");
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sampler

struct SamplerState {
    seq: u64,
    /// Minimum nanoseconds between recorded samples (0 = every call).
    interval_ns: u64,
    last_sample_ns: Option<u64>,
    samples: Ring<TelemetrySample>,
    bank: SeriesBank,
    /// Cumulative counter values at the previous sample (delta base).
    last_counters: BTreeMap<String, u64>,
    engine: AlertEngine,
    rules: Vec<AlertRule>,
    /// lane → first observed `lb_measured` (the drift baseline).
    baseline_lb: BTreeMap<String, f64>,
    total_alerts: u64,
}

struct SamplerInner {
    clock: Arc<dyn Clock>,
    registry: Registry,
    state: Mutex<SamplerState>,
}

/// Snapshots the metrics registry (plus caller gauges and rank
/// ensembles) into a bounded, delta-encoded telemetry stream. Cheap to
/// clone; clones share the same stream.
#[derive(Clone)]
pub struct Sampler {
    inner: Arc<SamplerInner>,
}

impl Sampler {
    /// A sampler over `registry` with real time and default capacity.
    pub fn new(registry: Registry) -> Sampler {
        Sampler::with_clock_and_capacity(
            Arc::new(MonotonicClock::new()),
            registry,
            DEFAULT_SAMPLE_CAPACITY,
        )
    }

    /// Full-control constructor (tests inject a
    /// [`MockClock`](crate::MockClock) and a small window).
    pub fn with_clock_and_capacity(
        clock: Arc<dyn Clock>,
        registry: Registry,
        capacity: usize,
    ) -> Sampler {
        let rules = default_rules();
        Sampler {
            inner: Arc::new(SamplerInner {
                clock,
                registry,
                state: Mutex::new(SamplerState {
                    seq: 0,
                    interval_ns: 0,
                    last_sample_ns: None,
                    samples: Ring::new(capacity),
                    bank: SeriesBank::new(capacity),
                    last_counters: BTreeMap::new(),
                    engine: AlertEngine::new(rules.clone()),
                    rules,
                    baseline_lb: BTreeMap::new(),
                    total_alerts: 0,
                }),
            }),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, SamplerState> {
        self.inner.state.lock().expect("telemetry state poisoned")
    }

    /// Replace the alert rule set (rearms everything).
    pub fn set_rules(&self, rules: Vec<AlertRule>) {
        let mut st = self.state();
        st.engine = AlertEngine::new(rules.clone());
        st.rules = rules;
    }

    /// Set the sampling cadence: calls closer together than
    /// `interval_ns` are suppressed (0 = record every call). The clock
    /// is injectable, so cadence is mock-clock-testable.
    pub fn set_interval_ns(&self, interval_ns: u64) {
        self.state().interval_ns = interval_ns;
    }

    /// Record one sample on `lane` at `step`. Returns `false` when the
    /// cadence suppressed it.
    ///
    /// `gauges` are instantaneous values (the sampler adds derived
    /// ones); `ranks` is the per-rank ensemble driving `straggler_z`
    /// (pass `&[]` when there is none).
    pub fn record(&self, lane: &str, step: u64, gauges: &[(&str, f64)], ranks: &[f64]) -> bool {
        let now = self.inner.clock.now_ns();
        let snap = self.inner.registry.snapshot();
        let mut st = self.state();
        if st.interval_ns > 0 {
            if let Some(last) = st.last_sample_ns {
                if now.saturating_sub(last) < st.interval_ns {
                    return false;
                }
            }
        }
        st.last_sample_ns = Some(now);

        let mut gauge_map: BTreeMap<String, f64> =
            gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        if !ranks.is_empty() {
            let (_, z) = straggler_z(ranks);
            gauge_map.insert("straggler_z".to_string(), z);
        }
        if let Some(&lb) = gauge_map.get("lb_measured") {
            let base = *st.baseline_lb.entry(lane.to_string()).or_insert(lb);
            gauge_map.insert("lb_drift".to_string(), lb - base);
        }

        let mut counters = BTreeMap::new();
        for (name, &cur) in &snap.counters {
            let prev = st.last_counters.get(name).copied().unwrap_or(0);
            let delta = cur.saturating_sub(prev);
            if delta > 0 {
                counters.insert(name.clone(), delta);
            }
            st.last_counters.insert(name.clone(), cur);
        }
        let quantiles: BTreeMap<String, [f64; 3]> = snap
            .histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    [h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)],
                )
            })
            .collect();

        let alerts = st.engine.observe(&gauge_map);
        st.total_alerts += alerts.len() as u64;

        let sample = TelemetrySample {
            seq: st.seq,
            lane: lane.to_string(),
            step,
            gauges: gauge_map,
            counters,
            quantiles,
            ranks: ranks.to_vec(),
            alerts,
        };
        st.seq += 1;
        st.bank.ingest(&sample);
        st.samples.push(sample);
        true
    }

    /// Samples currently retained (oldest first).
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.state().samples.iter().cloned().collect()
    }

    /// Number of retained samples.
    pub fn sample_count(&self) -> usize {
        self.state().samples.len()
    }

    /// Exact number of samples evicted by the window bound.
    pub fn dropped_samples(&self) -> u64 {
        self.state().samples.dropped()
    }

    /// Total alerts fired since creation (including on evicted samples).
    pub fn total_alerts(&self) -> u64 {
        self.state().total_alerts
    }

    /// Export the retained window as `cubesfc-telemetry-v1` NDJSON (one
    /// line per sample, trailing newline).
    pub fn export_ndjson(&self) -> String {
        let st = self.state();
        let mut out = String::new();
        for s in st.samples.iter() {
            out.push_str(&s.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Render the terminal summary of the retained window.
    pub fn render_summary(&self) -> String {
        let st = self.state();
        let dropped = st.samples.dropped();
        st.bank.render(dropped)
    }

    /// Clear all samples, baselines, and alert state; the rule set and
    /// cadence survive.
    pub fn reset(&self) {
        let mut st = self.state();
        st.seq = 0;
        st.last_sample_ns = None;
        st.samples.clear();
        let capacity = st.bank.capacity;
        st.bank = SeriesBank::new(capacity);
        st.last_counters.clear();
        let rules = st.rules.clone();
        st.engine = AlertEngine::new(rules);
        st.baseline_lb.clear();
        st.total_alerts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MockClock;

    fn sampler(capacity: usize) -> (Sampler, Arc<MockClock>, Registry) {
        let clock = Arc::new(MockClock::new());
        let reg = Registry::new();
        let s = Sampler::with_clock_and_capacity(clock.clone(), reg.clone(), capacity);
        (s, clock, reg)
    }

    #[test]
    fn samples_carry_counter_deltas_not_totals() {
        let (s, _, reg) = sampler(16);
        reg.counter_add("work", 10);
        s.record("lane", 0, &[], &[]);
        reg.counter_add("work", 5);
        s.record("lane", 1, &[], &[]);
        s.record("lane", 2, &[], &[]);
        let samples = s.samples();
        assert_eq!(samples[0].counters["work"], 10);
        assert_eq!(samples[1].counters["work"], 5);
        // Unchanged counter: elided entirely.
        assert!(!samples[2].counters.contains_key("work"));
    }

    #[test]
    fn quantiles_come_from_histograms() {
        let (s, _, reg) = sampler(16);
        for v in [10u64, 10, 10, 1000] {
            reg.histogram_record("lat", v);
        }
        s.record("lane", 0, &[], &[]);
        let q = s.samples()[0].quantiles["lat"];
        assert!(q[0] >= 8.0 && q[0] <= 15.0, "p50 {} in [8,15]", q[0]);
        assert!(q[2] > q[0], "p99 {} above p50 {}", q[2], q[0]);
    }

    #[test]
    fn derived_gauges_and_alerts_are_stamped() {
        let (s, _, _) = sampler(16);
        let mut ranks = vec![1.0; 16];
        ranks[3] = 3.0;
        s.record("rebalance", 0, &[("lb_measured", 0.1)], &[1.0; 16]);
        s.record("rebalance", 1, &[("lb_measured", 0.3)], &ranks);
        let samples = s.samples();
        assert_eq!(samples[0].gauges["straggler_z"], 0.0);
        assert_eq!(samples[0].gauges["lb_drift"], 0.0);
        let z = samples[1].gauges["straggler_z"];
        assert!(z > 2.5, "z = {z}");
        assert!((samples[1].gauges["lb_drift"] - 0.2).abs() < 1e-12);
        // The default straggler rule fired on the spike, once.
        assert_eq!(samples[1].alerts, vec!["straggler"]);
        assert_eq!(s.total_alerts(), 1);
    }

    #[test]
    fn window_wraparound_counts_drops_exactly() {
        let (s, _, _) = sampler(4);
        for step in 0..10u64 {
            s.record("lane", step, &[("g", step as f64)], &[]);
        }
        assert_eq!(s.sample_count(), 4);
        assert_eq!(s.dropped_samples(), 6);
        let steps: Vec<u64> = s.samples().iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
        // NDJSON export covers exactly the retained window.
        assert_eq!(s.export_ndjson().lines().count(), 4);
    }

    #[test]
    fn cadence_is_mock_clock_testable() {
        let (s, clock, _) = sampler(16);
        s.set_interval_ns(100);
        assert!(s.record("lane", 0, &[], &[]));
        // Too soon: suppressed.
        clock.advance(40);
        assert!(!s.record("lane", 1, &[], &[]));
        clock.advance(60);
        assert!(s.record("lane", 2, &[], &[]));
        assert_eq!(s.sample_count(), 2);
    }

    #[test]
    fn ndjson_lines_parse_and_round_trip() {
        let (s, _, reg) = sampler(16);
        reg.counter_add("c", 7);
        reg.histogram_record("h", 100);
        s.record("lane \"x\"", 3, &[("lb_measured", 0.25)], &[1.0, 2.0]);
        let text = s.export_ndjson();
        let parsed = parse_telemetry(&text).unwrap();
        assert_eq!(parsed, s.samples());
        // Re-serializing the parsed sample reproduces the bytes.
        assert_eq!(format!("{}\n", parsed[0].to_json_line()), text);
    }

    #[test]
    fn streams_are_byte_identical_across_runs() {
        let run = || {
            let (s, clock, reg) = sampler(32);
            for step in 0..20u64 {
                clock.advance(1_000);
                reg.counter_add("ops", step);
                reg.histogram_record("size", 1 << (step % 11));
                let lb = 0.01 * step as f64;
                let mut ranks = vec![1.0; 8];
                ranks[(step % 8) as usize] = 1.0 + lb;
                s.record("rebalance", step, &[("lb_measured", lb)], &ranks);
            }
            s.export_ndjson()
        };
        assert_eq!(run(), run());
        // reset() restores a fresh stream on the same sampler, too.
        let (s, _, _) = sampler(8);
        s.record("lane", 0, &[("g", 1.0)], &[]);
        let first = s.export_ndjson();
        s.reset();
        assert_eq!(s.sample_count(), 0);
        assert_eq!(s.dropped_samples(), 0);
        s.record("lane", 0, &[("g", 1.0)], &[]);
        assert_eq!(s.export_ndjson(), first);
    }

    #[test]
    fn summary_renders_gauges_ranks_and_alerts() {
        let (s, _, _) = sampler(16);
        let mut ranks = vec![1.0; 6];
        for step in 0..5u64 {
            if step >= 2 {
                ranks[0] = 4.0;
            }
            s.record(
                "rebalance",
                step,
                &[("lb_measured", 0.1 * step as f64)],
                &ranks,
            );
        }
        let text = s.render_summary();
        assert!(text.contains("telemetry: 5 sample(s)"), "{text}");
        assert!(text.contains("rebalance/lb_measured"), "{text}");
        assert!(text.contains("rank    0"), "{text}");
        assert!(text.contains("alerts:"), "{text}");
        // The replay path renders identically through the same bank.
        let mut bank = SeriesBank::new(16);
        for sample in s.samples() {
            bank.ingest(&sample);
        }
        assert_eq!(bank.render(s.dropped_samples()), text);
    }

    #[test]
    fn malformed_streams_are_rejected_with_line_numbers() {
        assert!(parse_telemetry("").unwrap().is_empty());
        let err = parse_telemetry("{\"schema\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let good = {
            let (s, _, _) = sampler(4);
            s.record("l", 0, &[], &[]);
            s.export_ndjson()
        };
        let err = parse_telemetry(&format!("{good}not json\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
