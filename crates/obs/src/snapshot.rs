//! Point-in-time views of a registry's merged metrics.
//!
//! All maps are `BTreeMap` so iteration order — and therefore every
//! exporter's output — is stable across runs and shard merge orders.

use std::collections::BTreeMap;

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanStat {
    pub(crate) fn new() -> SpanStat {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    pub(crate) fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.min_ns = self.min_ns.min(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }

    pub(crate) fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean duration in nanoseconds (0 when no samples).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One occupied bucket of a log2 histogram: values in `lo..=hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    pub lo: u64,
    pub hi: u64,
    pub count: u64,
}

/// Merged view of a log2-bucket histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Occupied buckets only, in increasing value order.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation within the log2 buckets.
    ///
    /// The histogram only knows per-bucket counts, so the `c` samples of
    /// a bucket `[lo, hi]` are treated as probability mass spread
    /// uniformly over the bucket's value range. The target mass
    /// `q · count` then lands in exactly one bucket, and the estimate
    /// interpolates linearly inside it. Consequences worth pinning:
    ///
    /// * `q = 0` returns the first bucket's `lo`, `q = 1` the last
    ///   bucket's `hi` (the tightest bounds the buckets can certify).
    /// * A target mass falling exactly on the boundary between two
    ///   buckets resolves to the *lower* bucket's `hi` (which is
    ///   `upper.lo - 1`), never jumping a gap of empty buckets.
    /// * Works unchanged on the overflow bucket `[2^63, u64::MAX]`.
    ///
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0.0f64;
        for b in &self.buckets {
            let c = b.count as f64;
            if cum + c >= target {
                let frac = if c > 0.0 { (target - cum) / c } else { 0.0 };
                return b.lo as f64 + frac.clamp(0.0, 1.0) * (b.hi - b.lo) as f64;
            }
            cum += c;
        }
        // Float round-off can leave `target` a hair above the final
        // cumulative mass; the answer is then the distribution's top.
        self.buckets.last().map(|b| b.hi as f64).unwrap_or(0.0)
    }
}

/// Bucket index for a log2 histogram: 0 holds value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)` (the last bucket is clipped to u64).
pub(crate) const HIST_BUCKETS: usize = 65;

pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The `lo..=hi` value range covered by bucket `i`.
pub(crate) fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A merged, immutable view of every shard of a registry at one moment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub timers: BTreeMap<String, SpanStat>,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stat_tracks_extremes_and_mean() {
        let mut s = SpanStat::new();
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn span_stat_merge_combines_shards() {
        let mut a = SpanStat::new();
        a.record(5);
        let mut b = SpanStat::new();
        b.record(100);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 112);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 100);
    }

    fn hist(buckets: Vec<Bucket>) -> HistogramSnapshot {
        let count = buckets.iter().map(|b| b.count).sum();
        HistogramSnapshot {
            count,
            sum: 0,
            buckets,
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_endpoints_are_exact_bucket_bounds() {
        let h = hist(vec![
            Bucket {
                lo: 4,
                hi: 7,
                count: 3,
            },
            Bucket {
                lo: 64,
                hi: 127,
                count: 1,
            },
        ]);
        // q=0 pins to the first occupied bucket's lo; q=1 to the last's hi.
        assert_eq!(h.quantile(0.0), 4.0);
        assert_eq!(h.quantile(1.0), 127.0);
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(h.quantile(-3.0), 4.0);
        assert_eq!(h.quantile(7.0), 127.0);
    }

    #[test]
    fn quantile_single_sample_interpolates_within_its_bucket() {
        let h = hist(vec![Bucket {
            lo: 8,
            hi: 15,
            count: 1,
        }]);
        assert_eq!(h.quantile(0.0), 8.0);
        assert_eq!(h.quantile(0.5), 11.5); // midpoint of [8, 15]
        assert_eq!(h.quantile(1.0), 15.0);
    }

    #[test]
    fn quantile_bucket_boundary_resolves_to_lower_bucket() {
        // Equal mass in [2,3] and [8,15]: target mass for q=0.5 sits
        // exactly on the boundary between the two buckets. The estimate
        // must be the lower bucket's hi (3.0), not the upper's lo (8.0)
        // and not anywhere in the empty [4,7] gap.
        let h = hist(vec![
            Bucket {
                lo: 2,
                hi: 3,
                count: 2,
            },
            Bucket {
                lo: 8,
                hi: 15,
                count: 2,
            },
        ]);
        assert_eq!(h.quantile(0.5), 3.0);
        // Just past the boundary the estimate continues from the upper
        // bucket's lo.
        assert_eq!(h.quantile(0.75), 11.5);
        assert_eq!(h.quantile(0.25), 2.5);
    }

    #[test]
    fn quantile_median_interpolates_linearly() {
        let h = hist(vec![Bucket {
            lo: 0,
            hi: 0,
            count: 4,
        }]);
        assert_eq!(h.quantile(0.5), 0.0);
        let h = hist(vec![
            Bucket {
                lo: 1,
                hi: 1,
                count: 1,
            },
            Bucket {
                lo: 2,
                hi: 3,
                count: 3,
            },
        ]);
        // q=0.5 → target mass 2.0: one unit past bucket [1,1], i.e. 1/3
        // into bucket [2,3].
        assert!((h.quantile(0.5) - (2.0 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn quantile_overflow_bucket_keeps_u64_range() {
        let (lo, hi) = bucket_range(64);
        let h = hist(vec![Bucket { lo, hi, count: 2 }]);
        assert_eq!(h.quantile(0.0), lo as f64);
        assert_eq!(h.quantile(1.0), hi as f64);
        let mid = h.quantile(0.5);
        assert!(mid > lo as f64 && mid < hi as f64, "mid {mid}");
    }

    #[test]
    fn log2_bucketing_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
    }
}
