//! Point-in-time views of a registry's merged metrics.
//!
//! All maps are `BTreeMap` so iteration order — and therefore every
//! exporter's output — is stable across runs and shard merge orders.

use std::collections::BTreeMap;

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanStat {
    pub(crate) fn new() -> SpanStat {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    pub(crate) fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.min_ns = self.min_ns.min(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }

    pub(crate) fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean duration in nanoseconds (0 when no samples).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One occupied bucket of a log2 histogram: values in `lo..=hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    pub lo: u64,
    pub hi: u64,
    pub count: u64,
}

/// Merged view of a log2-bucket histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Occupied buckets only, in increasing value order.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Bucket index for a log2 histogram: 0 holds value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)` (the last bucket is clipped to u64).
pub(crate) const HIST_BUCKETS: usize = 65;

pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The `lo..=hi` value range covered by bucket `i`.
pub(crate) fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A merged, immutable view of every shard of a registry at one moment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub timers: BTreeMap<String, SpanStat>,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stat_tracks_extremes_and_mean() {
        let mut s = SpanStat::new();
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn span_stat_merge_combines_shards() {
        let mut a = SpanStat::new();
        a.record(5);
        let mut b = SpanStat::new();
        b.record(100);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 112);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 100);
    }

    #[test]
    fn log2_bucketing_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
    }
}
