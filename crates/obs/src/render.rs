//! Human-readable profile rendering: a hierarchical span tree (paths are
//! slash-joined, e.g. `partition/coarsen/match`) plus counter and
//! histogram tables.

use crate::snapshot::{Snapshot, SpanStat};
use std::collections::BTreeMap;

#[derive(Default)]
struct Node {
    stat: Option<SpanStat>,
    children: BTreeMap<String, Node>,
}

fn insert(root: &mut Node, path: &str, stat: SpanStat) {
    let mut node = root;
    for seg in path.split('/') {
        node = node.children.entry(seg.to_string()).or_default();
    }
    node.stat = Some(stat);
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

fn render_node(out: &mut String, name: &str, node: &Node, depth: usize, parent_total_ns: u64) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{name}");
    match node.stat {
        Some(s) => {
            let share = if parent_total_ns > 0 {
                format!(
                    "{:5.1}%",
                    100.0 * s.total_ns as f64 / parent_total_ns as f64
                )
            } else {
                "     -".to_string()
            };
            out.push_str(&format!(
                "{label:<34} {:>7} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {share}\n",
                s.count,
                ms(s.total_ns),
                ms(s.mean_ns()),
                ms(s.min_ns),
                ms(s.max_ns),
            ));
        }
        // Interior path with no samples of its own (possible when only
        // deeper spans fired on this thread).
        None => out.push_str(&format!("{label}\n")),
    }
    let own_total = node.stat.map(|s| s.total_ns).unwrap_or(parent_total_ns);
    for (child_name, child) in &node.children {
        render_node(out, child_name, child, depth + 1, own_total);
    }
}

impl Snapshot {
    /// Render the snapshot as an indented profile report. Spans nest by
    /// their slash-joined path; `of-parent` is each span's share of its
    /// parent's total time.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("profile: no samples recorded (is profiling enabled?)\n");
            return out;
        }

        if !self.timers.is_empty() {
            out.push_str(&format!(
                "{:<34} {:>7} {:>12} {:>10} {:>10} {:>10} {}\n",
                "span", "count", "total(ms)", "mean(ms)", "min(ms)", "max(ms)", "of-parent"
            ));
            let mut root = Node::default();
            for (path, stat) in &self.timers {
                insert(&mut root, path, *stat);
            }
            for (name, node) in &root.children {
                render_node(&mut out, name, node, 0, 0);
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<40} {value:>16}\n"));
            }
        }

        if !self.histograms.is_empty() {
            out.push_str("\nhistograms (log2 buckets)\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} count={} mean={}\n",
                    h.count,
                    h.mean()
                ));
                for b in &h.buckets {
                    out.push_str(&format!(
                        "    [{:>12}, {:>12}] {:>10}\n",
                        b.lo, b.hi, b.count
                    ));
                }
            }
        }
        out
    }
}

/// Render `values` as a fixed-width Unicode sparkline (`▁▂▃▄▅▆▇█`).
///
/// The series is resampled to at most `width` columns (averaging each
/// column's bucket) and scaled to `[min, max]` over the *whole* series,
/// so rows rendered with a shared scale stay comparable. Non-finite
/// values render as spaces. Empty input gives an empty string.
pub(crate) fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let cols = width.min(values.len());
    let mut out = String::with_capacity(cols * 3);
    for c in 0..cols {
        // Column c covers values[c*n/cols .. (c+1)*n/cols).
        let a = c * values.len() / cols;
        let b = ((c + 1) * values.len() / cols).max(a + 1);
        let slice: Vec<f64> = values[a..b]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if slice.is_empty() {
            out.push(' ');
            continue;
        }
        let v = slice.iter().sum::<f64>() / slice.len() as f64;
        let t = if max > min {
            (v - min) / (max - min)
        } else {
            0.0
        };
        let idx = ((t * 7.0).round() as usize).min(7);
        out.push(BARS[idx]);
    }
    out
}

/// [`sparkline`] with an explicit `[min, max]` scale, for rendering a
/// group of rows (e.g. one per rank) on one shared scale.
pub(crate) fn sparkline_scaled(values: &[f64], width: usize, min: f64, max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(values.len());
    let mut out = String::with_capacity(cols * 3);
    for c in 0..cols {
        let a = c * values.len() / cols;
        let b = ((c + 1) * values.len() / cols).max(a + 1);
        let slice: Vec<f64> = values[a..b]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if slice.is_empty() {
            out.push(' ');
            continue;
        }
        let v = slice.iter().sum::<f64>() / slice.len() as f64;
        let t = if max > min {
            ((v - min) / (max - min)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let idx = ((t * 7.0).round() as usize).min(7);
        out.push(BARS[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Bucket, HistogramSnapshot};

    fn stat(count: u64, total: u64) -> SpanStat {
        let mut s = SpanStat::new();
        for _ in 0..count {
            s.record(total / count);
        }
        s
    }

    #[test]
    fn sparkline_spans_the_bar_alphabet() {
        let ramp: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(sparkline(&ramp, 8), "▁▂▃▄▅▆▇█");
        // Constant series renders flat at the bottom.
        assert_eq!(sparkline(&[5.0; 4], 4), "▁▁▁▁");
        // Longer series downsample to the requested width.
        let long: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(sparkline(&long, 10).chars().count(), 10);
        // Degenerate inputs are quiet.
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
        assert_eq!(sparkline(&[f64::NAN, 1.0], 2), " ▁");
    }

    #[test]
    fn shared_scale_keeps_rows_comparable() {
        // On a shared [0, 8] scale a flat 1.0 row sits low while a flat
        // 8.0 row sits at the top — the straggler is visible at a glance.
        assert_eq!(sparkline_scaled(&[1.0; 4], 4, 0.0, 8.0), "▂▂▂▂");
        assert_eq!(sparkline_scaled(&[8.0; 4], 4, 0.0, 8.0), "████");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = Snapshot::default().render_table();
        assert!(text.contains("no samples"));
    }

    #[test]
    fn tree_indents_children_under_parents() {
        let mut snap = Snapshot::default();
        snap.timers.insert("partition".into(), stat(1, 10_000_000));
        snap.timers
            .insert("partition/coarsen".into(), stat(4, 8_000_000));
        snap.timers
            .insert("partition/coarsen/match".into(), stat(4, 2_000_000));
        let text = snap.render_table();
        let lines: Vec<&str> = text.lines().collect();
        let p = lines
            .iter()
            .position(|l| l.starts_with("partition "))
            .unwrap();
        assert!(lines[p + 1].starts_with("  coarsen"));
        assert!(lines[p + 2].starts_with("    match"));
        // coarsen is 80% of partition's 10ms.
        assert!(lines[p + 1].contains("80.0%"), "line: {}", lines[p + 1]);
        // match is 25% of coarsen's 8ms.
        assert!(lines[p + 2].contains("25.0%"), "line: {}", lines[p + 2]);
    }

    #[test]
    fn counters_and_histograms_render() {
        let mut snap = Snapshot::default();
        snap.counters.insert("dss/bytes_exchanged".into(), 12345);
        snap.histograms.insert(
            "msg".into(),
            HistogramSnapshot {
                count: 1,
                sum: 2048,
                buckets: vec![Bucket {
                    lo: 2048,
                    hi: 4095,
                    count: 1,
                }],
            },
        );
        let text = snap.render_table();
        assert!(text.contains("dss/bytes_exchanged"));
        assert!(text.contains("12345"));
        assert!(text.contains("count=1 mean=2048"));
    }
}
