//! Human-readable profile rendering: a hierarchical span tree (paths are
//! slash-joined, e.g. `partition/coarsen/match`) plus counter and
//! histogram tables.

use crate::snapshot::{Snapshot, SpanStat};
use std::collections::BTreeMap;

#[derive(Default)]
struct Node {
    stat: Option<SpanStat>,
    children: BTreeMap<String, Node>,
}

fn insert(root: &mut Node, path: &str, stat: SpanStat) {
    let mut node = root;
    for seg in path.split('/') {
        node = node.children.entry(seg.to_string()).or_default();
    }
    node.stat = Some(stat);
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

fn render_node(out: &mut String, name: &str, node: &Node, depth: usize, parent_total_ns: u64) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{name}");
    match node.stat {
        Some(s) => {
            let share = if parent_total_ns > 0 {
                format!(
                    "{:5.1}%",
                    100.0 * s.total_ns as f64 / parent_total_ns as f64
                )
            } else {
                "     -".to_string()
            };
            out.push_str(&format!(
                "{label:<34} {:>7} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {share}\n",
                s.count,
                ms(s.total_ns),
                ms(s.mean_ns()),
                ms(s.min_ns),
                ms(s.max_ns),
            ));
        }
        // Interior path with no samples of its own (possible when only
        // deeper spans fired on this thread).
        None => out.push_str(&format!("{label}\n")),
    }
    let own_total = node.stat.map(|s| s.total_ns).unwrap_or(parent_total_ns);
    for (child_name, child) in &node.children {
        render_node(out, child_name, child, depth + 1, own_total);
    }
}

impl Snapshot {
    /// Render the snapshot as an indented profile report. Spans nest by
    /// their slash-joined path; `of-parent` is each span's share of its
    /// parent's total time.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("profile: no samples recorded (is profiling enabled?)\n");
            return out;
        }

        if !self.timers.is_empty() {
            out.push_str(&format!(
                "{:<34} {:>7} {:>12} {:>10} {:>10} {:>10} {}\n",
                "span", "count", "total(ms)", "mean(ms)", "min(ms)", "max(ms)", "of-parent"
            ));
            let mut root = Node::default();
            for (path, stat) in &self.timers {
                insert(&mut root, path, *stat);
            }
            for (name, node) in &root.children {
                render_node(&mut out, name, node, 0, 0);
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<40} {value:>16}\n"));
            }
        }

        if !self.histograms.is_empty() {
            out.push_str("\nhistograms (log2 buckets)\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} count={} mean={}\n",
                    h.count,
                    h.mean()
                ));
                for b in &h.buckets {
                    out.push_str(&format!(
                        "    [{:>12}, {:>12}] {:>10}\n",
                        b.lo, b.hi, b.count
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Bucket, HistogramSnapshot};

    fn stat(count: u64, total: u64) -> SpanStat {
        let mut s = SpanStat::new();
        for _ in 0..count {
            s.record(total / count);
        }
        s
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = Snapshot::default().render_table();
        assert!(text.contains("no samples"));
    }

    #[test]
    fn tree_indents_children_under_parents() {
        let mut snap = Snapshot::default();
        snap.timers.insert("partition".into(), stat(1, 10_000_000));
        snap.timers
            .insert("partition/coarsen".into(), stat(4, 8_000_000));
        snap.timers
            .insert("partition/coarsen/match".into(), stat(4, 2_000_000));
        let text = snap.render_table();
        let lines: Vec<&str> = text.lines().collect();
        let p = lines
            .iter()
            .position(|l| l.starts_with("partition "))
            .unwrap();
        assert!(lines[p + 1].starts_with("  coarsen"));
        assert!(lines[p + 2].starts_with("    match"));
        // coarsen is 80% of partition's 10ms.
        assert!(lines[p + 1].contains("80.0%"), "line: {}", lines[p + 1]);
        // match is 25% of coarsen's 8ms.
        assert!(lines[p + 2].contains("25.0%"), "line: {}", lines[p + 2]);
    }

    #[test]
    fn counters_and_histograms_render() {
        let mut snap = Snapshot::default();
        snap.counters.insert("dss/bytes_exchanged".into(), 12345);
        snap.histograms.insert(
            "msg".into(),
            HistogramSnapshot {
                count: 1,
                sum: 2048,
                buckets: vec![Bucket {
                    lo: 2048,
                    hi: 4095,
                    count: 1,
                }],
            },
        );
        let text = snap.render_table();
        assert!(text.contains("dss/bytes_exchanged"));
        assert!(text.contains("12345"));
        assert!(text.contains("count=1 mean=2048"));
    }
}
