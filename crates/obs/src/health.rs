//! Derived health signals and threshold alerting over telemetry samples.
//!
//! Signals:
//!
//! * **Straggler z-score** — [`straggler_z`] measures how far the
//!   slowest rank sits above the rank ensemble, in ensemble standard
//!   deviations. A persistent faulty rank (one processor running 3×
//!   slower) shows up as a large positive z long before aggregate wall
//!   time does.
//! * **LB drift** — the sampler reports each lane's Eq. (1) load
//!   balance relative to the first sample on that lane, so slow
//!   degradation is visible as a trend, not just a level.
//!
//! Alerting ([`AlertEngine`]) follows the rebalance `PolicyEngine`
//! discipline: a rule has a *trigger* threshold, a lower *re-arm*
//! threshold (hysteresis: once fired it stays silent until the signal
//! falls back below `rearm`), and a *minimum duration* in consecutive
//! samples, so a one-sample spike does not page anyone unless the rule
//! says it should.

use std::collections::BTreeMap;

/// Z-score of the worst (largest) entry against the ensemble:
/// `(max - mean) / stddev`. Returns `(rank_index, z)`.
///
/// Degenerate ensembles are safe: fewer than two finite entries, or a
/// zero spread, give `z = 0` (no straggler can be distinguished).
/// Non-finite entries are ignored, mirroring `measured_lb`.
pub fn straggler_z(per_rank: &[f64]) -> (usize, f64) {
    let mut n = 0usize;
    let mut sum = 0.0f64;
    let mut max = f64::NEG_INFINITY;
    let mut max_idx = 0usize;
    for (i, &v) in per_rank.iter().enumerate() {
        if v.is_finite() {
            n += 1;
            sum += v;
            if v > max {
                max = v;
                max_idx = i;
            }
        }
    }
    if n < 2 {
        return (max_idx, 0.0);
    }
    let mean = sum / n as f64;
    let var = per_rank
        .iter()
        .filter(|v| v.is_finite())
        .map(|&v| (v - mean) * (v - mean))
        .sum::<f64>()
        / n as f64;
    let std = var.sqrt();
    if std <= 0.0 {
        return (max_idx, 0.0);
    }
    (max_idx, (max - mean) / std)
}

/// One alert rule over a sampled gauge.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    /// Rule name, reported in fired alerts (e.g. `straggler`).
    pub name: String,
    /// The gauge the rule watches (e.g. `straggler_z`).
    pub metric: String,
    /// Fire when the gauge exceeds this...
    pub threshold: f64,
    /// ...for at least this many consecutive samples.
    pub min_duration: usize,
    /// Once fired, stay silent until the gauge falls below this
    /// (hysteresis; must be `<= threshold`).
    pub rearm: f64,
}

impl AlertRule {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        metric: &str,
        threshold: f64,
        min_duration: usize,
        rearm: f64,
    ) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            threshold,
            min_duration: min_duration.max(1),
            rearm,
        }
    }
}

/// The default rule set the global sampler starts with.
///
/// * `straggler` — one rank > 2.5σ above the ensemble on the sampled
///   per-rank values, even for a single sample (a faulty rank is worth
///   flagging the step it appears).
/// * `lb_high` — Eq. (1) load balance above 0.5 for 3 consecutive
///   samples: most of the machine is idle waiting for the slowest rank
///   and the policy is not correcting it.
/// * `migration_churn` — more than half the elements migrated per step,
///   3 steps running: rebalancing is thrashing.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new("straggler", "straggler_z", 2.5, 1, 1.0),
        AlertRule::new("lb_high", "lb_measured", 0.5, 3, 0.25),
        AlertRule::new("migration_churn", "migration_fraction", 0.5, 3, 0.25),
    ]
}

/// Per-rule hysteresis state (the `PolicyEngine { armed }` pattern plus
/// a consecutive-sample streak for `min_duration`).
#[derive(Clone, Debug)]
struct RuleState {
    rule: AlertRule,
    armed: bool,
    streak: usize,
    fired: u64,
}

/// Evaluates a rule set against successive gauge maps.
#[derive(Clone, Debug, Default)]
pub struct AlertEngine {
    states: Vec<RuleState>,
}

impl AlertEngine {
    /// An engine with every rule armed.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            states: rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    armed: true,
                    streak: 0,
                    fired: 0,
                })
                .collect(),
        }
    }

    /// Feed one sample's gauges; returns the names of rules that fired
    /// *on this sample*. A missing metric resets the rule's streak but
    /// neither fires nor re-arms it. A *non-finite* value is different:
    /// the lane does carry the gauge, the sample is just unusable (e.g.
    /// `lb_drift` off a zero-load step), so it is skipped without
    /// touching the streak — resetting would let one NaN sample silence
    /// an alert that genuine consecutive excursions should have fired.
    pub fn observe(&mut self, gauges: &BTreeMap<String, f64>) -> Vec<String> {
        let mut fired = Vec::new();
        for st in &mut self.states {
            let Some(&v) = gauges.get(&st.rule.metric) else {
                st.streak = 0;
                continue;
            };
            if !v.is_finite() {
                continue;
            }
            // Re-arm half of the hysteresis loop, mirroring
            // `PolicyEngine::observe`: only a genuine recovery below
            // `rearm` makes the rule live again.
            if v < st.rule.rearm {
                st.armed = true;
                st.streak = 0;
                continue;
            }
            if v > st.rule.threshold {
                st.streak += 1;
                if st.armed && st.streak >= st.rule.min_duration {
                    st.armed = false;
                    st.fired += 1;
                    fired.push(st.rule.name.clone());
                }
            } else {
                st.streak = 0;
            }
        }
        fired
    }

    /// Total fires per rule since construction, in rule order.
    pub fn fired_counts(&self) -> Vec<(String, u64)> {
        self.states
            .iter()
            .map(|s| (s.rule.name.clone(), s.fired))
            .collect()
    }

    /// Sum of all fires across rules.
    pub fn total_fired(&self) -> u64 {
        self.states.iter().map(|s| s.fired).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn straggler_z_flags_one_slow_rank() {
        // 15 ranks at 1.0, one at 3.0: a textbook straggler.
        let mut ranks = vec![1.0; 16];
        ranks[5] = 3.0;
        let (idx, z) = straggler_z(&ranks);
        assert_eq!(idx, 5);
        assert!(z > 3.0, "z = {z}");
        // Uniform ensemble: zero spread, zero z.
        assert_eq!(straggler_z(&[1.0; 16]).1, 0.0);
        // Degenerate inputs are quiet, not NaN.
        assert_eq!(straggler_z(&[]).1, 0.0);
        assert_eq!(straggler_z(&[4.0]).1, 0.0);
        let (_, z) = straggler_z(&[1.0, f64::NAN, 3.0, 1.0, 1.0]);
        assert!(z.is_finite());
    }

    #[test]
    fn alert_fires_once_then_needs_rearm() {
        let mut eng = AlertEngine::new(vec![AlertRule::new("hot", "lb", 0.5, 1, 0.2)]);
        assert!(eng.observe(&gauges(&[("lb", 0.1)])).is_empty());
        assert_eq!(eng.observe(&gauges(&[("lb", 0.9)])), vec!["hot"]);
        // Still hot: hysteresis holds, no refire.
        assert!(eng.observe(&gauges(&[("lb", 0.9)])).is_empty());
        // Between rearm and threshold: still silent.
        assert!(eng.observe(&gauges(&[("lb", 0.3)])).is_empty());
        // Recovery below rearm re-arms; the next excursion fires again.
        assert!(eng.observe(&gauges(&[("lb", 0.1)])).is_empty());
        assert_eq!(eng.observe(&gauges(&[("lb", 0.9)])), vec!["hot"]);
        assert_eq!(eng.total_fired(), 2);
        assert_eq!(eng.fired_counts(), vec![("hot".to_string(), 2)]);
    }

    #[test]
    fn min_duration_requires_consecutive_excess() {
        let mut eng = AlertEngine::new(vec![AlertRule::new("slow", "z", 2.0, 3, 0.5)]);
        // Two hot samples, a calm one, two hot: the streak resets, so
        // nothing fires until three in a row.
        for v in [3.0, 3.0, 1.0, 3.0, 3.0] {
            assert!(eng.observe(&gauges(&[("z", v)])).is_empty(), "v={v}");
        }
        assert_eq!(eng.observe(&gauges(&[("z", 3.0)])), vec!["slow"]);
    }

    #[test]
    fn missing_metric_resets_streak_without_firing() {
        let mut eng = AlertEngine::new(vec![AlertRule::new("r", "m", 1.0, 2, 0.1)]);
        assert!(eng.observe(&gauges(&[("m", 2.0)])).is_empty());
        assert!(eng.observe(&gauges(&[])).is_empty());
        assert!(eng.observe(&gauges(&[("m", 2.0)])).is_empty());
        assert_eq!(eng.observe(&gauges(&[("m", 2.0)])), vec!["r"]);
    }

    #[test]
    fn non_finite_samples_are_skipped_without_resetting_the_streak() {
        let mut eng = AlertEngine::new(vec![AlertRule::new("r", "m", 1.0, 2, 0.1)]);
        // One hot sample starts the streak.
        assert!(eng.observe(&gauges(&[("m", 2.0)])).is_empty());
        // A NaN sample is unusable, but it is NOT a calm sample: the
        // streak must survive it, or one degenerate step suppresses the
        // alert indefinitely.
        assert!(eng.observe(&gauges(&[("m", f64::NAN)])).is_empty());
        assert!(eng.observe(&gauges(&[("m", f64::INFINITY)])).is_empty());
        // The second *finite* hot sample completes min_duration.
        assert_eq!(eng.observe(&gauges(&[("m", 2.0)])), vec!["r"]);
        // After firing, NaN must not re-arm either: only a genuine
        // finite recovery below `rearm` does.
        assert!(eng.observe(&gauges(&[("m", f64::NAN)])).is_empty());
        assert!(
            eng.observe(&gauges(&[("m", 2.0)])).is_empty(),
            "still disarmed"
        );
        assert!(eng.observe(&gauges(&[("m", 0.05)])).is_empty());
        assert!(
            eng.observe(&gauges(&[("m", 2.0)])).is_empty(),
            "streak 1 of 2"
        );
        assert_eq!(eng.observe(&gauges(&[("m", 2.0)])), vec!["r"]);
    }

    #[test]
    fn default_rules_cover_the_documented_signals() {
        let rules = default_rules();
        let metrics: Vec<&str> = rules.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(
            metrics,
            vec!["straggler_z", "lb_measured", "migration_fraction"]
        );
        for r in &rules {
            assert!(r.rearm <= r.threshold);
            assert!(r.min_duration >= 1);
        }
    }
}
