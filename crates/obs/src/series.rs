//! Bounded, delta-encoded time series for the telemetry sampler.
//!
//! Two layers:
//!
//! * [`Ring<T>`] — a fixed-capacity FIFO that *never grows*: pushing
//!   into a full ring evicts the oldest entry (returned to the caller so
//!   it can be folded into a base accumulator) and increments an exact
//!   `dropped` counter. This is the same drop-with-exact-count contract
//!   the event ring gives `dropped_events`, applied to samples.
//! * [`Series`] — one metric's history as `(seq, value)` points, stored
//!   delta-encoded: each slot keeps the difference from the previous
//!   point, and a `base` value absorbs everything that has been evicted,
//!   so reconstruction ([`Series::points`]) and the running
//!   [`Series::last`] stay exact no matter how many samples the window
//!   dropped.

use std::collections::VecDeque;

/// A fixed-capacity FIFO with an exact count of evicted entries.
#[derive(Clone, Debug)]
pub(crate) struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` entries (at least 1).
    pub(crate) fn new(capacity: usize) -> Ring<T> {
        Ring {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append `item`; when full, the oldest entry is evicted, counted,
    /// and handed back so the caller can fold it into its base state.
    pub(crate) fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.buf.len() == self.capacity {
            self.dropped += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        evicted
    }

    /// Entries oldest-first.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Exact number of entries evicted since creation (or last clear).
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

/// One retained point of a [`Series`]: the sample sequence number and
/// the *delta* of the value against the previous retained point (the
/// oldest retained point's delta is against [`Series`]'s `base`).
#[derive(Clone, Copy, Debug, PartialEq)]
struct DeltaPoint {
    seq: u64,
    delta: f64,
}

/// One metric's bounded, delta-encoded history.
#[derive(Clone, Debug)]
pub struct Series {
    ring: Ring<DeltaPoint>,
    /// Value just before the oldest retained point: 0 for a fresh
    /// series, then the sum of every evicted delta.
    base: f64,
    /// Last absolute value pushed (so the next delta is exact without
    /// re-walking the window).
    last: f64,
}

impl Series {
    /// A series retaining at most `capacity` points.
    pub fn new(capacity: usize) -> Series {
        Series {
            ring: Ring::new(capacity),
            base: 0.0,
            last: 0.0,
        }
    }

    /// Record the absolute `value` observed at sample `seq`. Stored as a
    /// delta against the previous push; evicting an old point folds its
    /// delta into `base`, so nothing about the surviving window shifts.
    pub fn push(&mut self, seq: u64, value: f64) {
        let delta = value - self.last;
        self.last = value;
        if let Some(evicted) = self.ring.push(DeltaPoint { seq, delta }) {
            self.base += evicted.delta;
        }
    }

    /// Reconstruct the retained window as absolute `(seq, value)` points,
    /// oldest first.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut acc = self.base;
        self.ring
            .iter()
            .map(|p| {
                acc += p.delta;
                (p.seq, acc)
            })
            .collect()
    }

    /// Just the values of [`Series::points`] (sparkline input).
    pub fn values(&self) -> Vec<f64> {
        self.points().into_iter().map(|(_, v)| v).collect()
    }

    /// The most recent absolute value (0.0 before any push).
    pub fn last(&self) -> f64 {
        self.last
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Exact number of points evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_push_under_capacity_drops_nothing() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            assert!(r.push(i).is_none());
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_wraparound_counts_every_eviction_exactly() {
        let mut r = Ring::new(3);
        let mut evicted = Vec::new();
        for i in 0..10 {
            if let Some(e) = r.push(i) {
                evicted.push(e);
            }
        }
        // 10 pushes into capacity 3: exactly 7 evictions, oldest-first.
        assert_eq!(r.dropped(), 7);
        assert_eq!(evicted, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        r.clear();
        assert_eq!(r.dropped(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        assert!(r.push(1).is_none());
        assert_eq!(r.push(2), Some(1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn series_reconstructs_absolute_values() {
        let mut s = Series::new(8);
        for (seq, v) in [(0u64, 2.0), (1, 5.0), (2, 5.0), (3, 1.0)] {
            s.push(seq, v);
        }
        assert_eq!(
            s.points(),
            vec![(0, 2.0), (1, 5.0), (2, 5.0), (3, 1.0)],
            "delta decode must be exact"
        );
        assert_eq!(s.last(), 1.0);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn series_wraparound_folds_evicted_deltas_into_base() {
        let mut s = Series::new(3);
        // Exactly representable values: delta encode/decode is lossless.
        let values = [4.0, 8.0, 2.0, 16.0, 1.0, 32.0];
        for (seq, &v) in values.iter().enumerate() {
            s.push(seq as u64, v);
        }
        assert_eq!(s.dropped(), 3);
        // The window shows the last 3 values, absolute and exact, even
        // though their deltas chain through evicted points.
        assert_eq!(s.points(), vec![(3, 16.0), (4, 1.0), (5, 32.0)]);
        assert_eq!(s.values(), vec![16.0, 1.0, 32.0]);
        assert_eq!(s.last(), 32.0);
    }

    #[test]
    fn series_monotonic_counter_window_is_exact() {
        // The counter-delta use case: cumulative totals sampled each
        // step; after heavy wraparound the retained window still decodes
        // to the true cumulative values.
        let mut s = Series::new(4);
        let mut total = 0.0;
        for seq in 0..100u64 {
            total += (seq % 7) as f64;
            s.push(seq, total);
        }
        assert_eq!(s.dropped(), 96);
        let pts = s.points();
        assert_eq!(pts.len(), 4);
        let mut expect = 0.0;
        let mut expected_points = Vec::new();
        for seq in 0..100u64 {
            expect += (seq % 7) as f64;
            if seq >= 96 {
                expected_points.push((seq, expect));
            }
        }
        assert_eq!(pts, expected_points);
    }
}
