//! Trace replay & analysis: wait-state decomposition, cross-rank
//! critical path, and imbalance attribution over `cubesfc-trace-v1`.
//!
//! The Chrome-trace exporter (`chrome.rs`) records *what happened*;
//! this module explains *where the time went*. [`analyze_trace`]
//! replays an exported trace document back into per-lane interval
//! timelines — tolerating unbalanced begin/end pairs and drop-newest
//! truncation — and computes the three things the paper's Eq.-(1)
//! argument needs:
//!
//! 1. **Wait-state decomposition** — per-rank seconds spent in each
//!    slice phase (`compute`/`pack`/`wait`/`scatter`, plus whatever
//!    else the trace names). Phase buckets are accumulated in integer
//!    nanoseconds over *all* slices, so their sum equals the summed raw
//!    slice durations exactly — no float drift, no double counting.
//! 2. **Cross-rank critical path** — the solver's step structure (a
//!    `steps` lane, when present) cuts the run into segments; each
//!    segment contributes its bottleneck rank's *productive* (top-level
//!    non-`wait`) time, giving Σ_steps max_rank(work) with per-phase
//!    contribution percentages and a *slowest-rank chain*: which ranks
//!    were the bottleneck, charged with the wait they induced on the
//!    others. Wait is excluded deliberately: in a barrier-synchronized
//!    step every rank's wall occupancy ties, but the rank still working
//!    while the others sit in `wait` is the one holding the step open.
//! 3. **Imbalance attribution** — Eq.-(1) LB on traced compute seconds
//!    per step, against the partitioner's element-count LB (from the
//!    `elements` args on compute slices); the gap is the imbalance the
//!    partitioner did not predict, and the measured wait is blamed on
//!    communication volume priced by the seam α/β machine model.
//!
//! Everything here is a pure function of the trace bytes — no clocks,
//! no environment — so [`TraceAnalysis::to_json`] (schema
//! `cubesfc-analysis-v1`) is byte-identical across replays of the same
//! trace, and pinnable in tests. [`compare_analyses`] diffs two
//! analysis documents and gates on critical-path-seconds and
//! wait-fraction regressions, mirroring `compare_profiles`.

use crate::chrome::TRACE_SCHEMA;
use crate::json::escape;
use crate::telemetry::{SeriesBank, TelemetrySample};
use crate::value::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written to every analysis document.
pub const ANALYSIS_SCHEMA: &str = "cubesfc-analysis-v1";

/// α/β communication price used for the comm-volume blame term.
///
/// The defaults are the inter-node route of the seam machine model
/// (`MachineModel::ncar_p690().alpha_beta()`); callers with a different
/// machine pass their own terms through [`AnalyzeConfig`].
#[derive(Clone, Copy, Debug)]
pub struct CommModel {
    /// Per-message latency (seconds).
    pub alpha_s: f64,
    /// Bandwidth (bytes per second).
    pub beta_bytes_per_s: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel {
            alpha_s: 18.0e-6,
            beta_bytes_per_s: 350.0e6,
        }
    }
}

/// Tunables for [`analyze_trace`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzeConfig {
    /// The α/β terms pricing traced communication volume.
    pub comm: CommModel,
}

/// One reconstructed interval on a lane.
#[derive(Clone, Debug)]
pub struct Slice {
    /// Slice (phase) name from the `B` event.
    pub name: String,
    /// Start timestamp (ns).
    pub start_ns: u64,
    /// Duration (ns); zero-duration slices are legal.
    pub dur_ns: u64,
    /// Nesting depth (0 = top level). Only top-level slices count
    /// toward busy time and the critical path; *all* slices count
    /// toward the phase decomposition.
    pub depth: u32,
    /// The `elements` arg on the opening event (0 when absent) — the
    /// partitioner's element count for compute slices.
    pub elements: u64,
}

impl Slice {
    fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Nanoseconds of this slice inside the window `[a, b)`.
    fn overlap_ns(&self, a: u64, b: u64) -> u64 {
        self.end_ns().min(b).saturating_sub(self.start_ns.max(a))
    }

    /// Whether the slice begins inside the window `[a, b)` (how
    /// zero-duration slices and per-step args are assigned a segment).
    fn starts_in(&self, a: u64, b: u64) -> bool {
        self.start_ns >= a && self.start_ns < b
    }
}

/// One lane's reconstructed timeline.
#[derive(Clone, Debug, Default)]
pub struct LaneTimeline {
    /// Lane name (from `thread_name` metadata; `tid <n>` fallback).
    pub name: String,
    /// Completed slices in start order.
    pub slices: Vec<Slice>,
    /// Instant-mark count.
    pub instants: u64,
    /// `E` events that arrived with no open slice (unbalanced input —
    /// the matching `B` was truncated away).
    pub unmatched_ends: u64,
    /// `B` events whose `E` never arrived (drop-newest truncation);
    /// closed at the lane's last observed timestamp, so their time is
    /// kept — possibly undercounted, never invented.
    pub unclosed_begins: u64,
    /// First timestamp observed on the lane (ns).
    pub first_ns: u64,
    /// Last timestamp observed on the lane (ns).
    pub last_ns: u64,
    /// Σ of `bytes` args over the lane's events.
    pub bytes: u64,
    /// Σ of `messages` args; events carrying `bytes` but no explicit
    /// `messages` count (e.g. `send`/`recv` instants) count as one
    /// message each.
    pub messages: u64,
}

impl LaneTimeline {
    /// Σ durations over *all* slices (any depth). The phase
    /// decomposition sums to exactly this.
    pub fn total_slice_ns(&self) -> u64 {
        self.slices.iter().map(|s| s.dur_ns).sum()
    }

    /// Σ durations over top-level slices only (never double-counts
    /// nested time).
    pub fn busy_ns(&self) -> u64 {
        self.slices
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Wall extent the lane was live for (ns).
    pub fn extent_ns(&self) -> u64 {
        self.last_ns.saturating_sub(self.first_ns)
    }

    /// Fraction of the lane's extent covered by top-level slices.
    pub fn utilization(&self) -> f64 {
        let extent = self.extent_ns();
        if extent == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / extent as f64
    }

    /// Per-phase nanoseconds, keyed by slice name, over all slices.
    pub fn phase_ns(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for s in &self.slices {
            *map.entry(s.name.clone()).or_insert(0u64) += s.dur_ns;
        }
        map
    }

    /// `wait` nanoseconds as a fraction of all sliced nanoseconds.
    pub fn wait_fraction(&self) -> f64 {
        let total = self.total_slice_ns();
        if total == 0 {
            return 0.0;
        }
        self.phase_ns().get("wait").copied().unwrap_or(0) as f64 / total as f64
    }
}

/// The slowest-rank chain: who the other ranks waited for.
#[derive(Clone, Copy, Debug)]
pub struct Straggler {
    /// The rank that was the per-segment bottleneck most often.
    pub rank: usize,
    /// How many segments it bottlenecked.
    pub bottleneck_segments: usize,
    /// Other ranks' `wait` seconds in the segments this rank
    /// bottlenecked — the wait attributed to it.
    pub attributed_wait_s: f64,
}

/// Aggregates over the `rank <n>` lanes.
#[derive(Clone, Debug, Default)]
pub struct RankSummary {
    /// Sorted rank indices present in the trace.
    pub ranks: Vec<usize>,
    /// Nanoseconds per phase name, summed over all rank lanes. Sums
    /// exactly (integer arithmetic) to `total_ns`.
    pub decomposition_ns: BTreeMap<String, u64>,
    /// Σ sliced nanoseconds over all rank lanes.
    pub total_ns: u64,
    /// `wait` nanoseconds over all rank lanes.
    pub wait_ns: u64,
    /// The slowest-rank chain (None without rank lanes or segments).
    pub straggler: Option<Straggler>,
    /// `[segment][rank]` productive (top-level non-`wait`) seconds,
    /// feeding the sparkline rows — the straggler towers visibly where
    /// wall occupancy would tie at the barrier.
    pub per_segment_work: Vec<Vec<f64>>,
}

impl RankSummary {
    /// `wait_ns / total_ns` (0 when no sliced time).
    pub fn wait_fraction(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.wait_ns as f64 / self.total_ns as f64
    }
}

/// The cross-rank critical path through the step structure.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Σ over segments of the bottleneck rank's productive (top-level
    /// non-`wait`) seconds.
    pub seconds: f64,
    /// Segment count (steps when a `steps` lane exists, else 1).
    pub segments: usize,
    /// Seconds each phase contributed along the path (bottleneck ranks'
    /// top-level non-`wait` slices, so each nanosecond is attributed
    /// once).
    pub phases: BTreeMap<String, f64>,
    /// `(rank, segments bottlenecked)` for every rank, in rank order.
    pub bottlenecks: Vec<(usize, usize)>,
}

/// Measured-vs-predicted imbalance attribution.
#[derive(Clone, Debug, Default)]
pub struct Imbalance {
    /// Eq.-(1) LB on traced compute seconds, mean over segments.
    pub lb_measured_mean: f64,
    /// Worst-segment Eq.-(1) LB on traced compute seconds.
    pub lb_measured_max: f64,
    /// Eq.-(1) LB on the `elements` args, mean over segments.
    pub lb_elements_mean: f64,
    /// Worst-segment element-count LB.
    pub lb_elements_max: f64,
    /// `lb_measured_mean - lb_elements_mean`: imbalance the partitioner
    /// did not predict.
    pub gap: f64,
    /// Σ `bytes` args over rank lanes.
    pub bytes_total: u64,
    /// Σ message counts over rank lanes.
    pub messages: u64,
    /// `α·messages + bytes/β` — what the machine model says the traced
    /// comm volume should cost.
    pub predicted_comm_s: f64,
    /// How much of the measured wait the α/β comm model explains
    /// (capped at 1; the rest is synchronization imbalance).
    pub comm_blame_fraction: f64,
}

/// The full analysis of one trace document.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// `droppedEvents` from the trace's `otherData`.
    pub dropped_events: u64,
    /// Per-lane timelines, sorted by lane name.
    pub lanes: Vec<LaneTimeline>,
    /// Rank-lane aggregates.
    pub ranks: RankSummary,
    /// The cross-rank critical path.
    pub critical_path: CriticalPath,
    /// Imbalance attribution.
    pub imbalance: Imbalance,
    /// The α/β terms the attribution used.
    pub comm: CommModel,
}

/// `rank <n>` lane names carry their rank index.
fn rank_index(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("rank ")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// `ts` fields are decimal microseconds with three places; recover the
/// exact integer nanoseconds.
fn ts_to_ns(v: &JsonValue) -> Option<u64> {
    let us = v.as_f64()?;
    if !us.is_finite() || us < 0.0 {
        return None;
    }
    Some((us * 1000.0).round() as u64)
}

fn arg_u64(ev: &JsonValue, key: &str) -> Option<u64> {
    ev.get("args")?.get(key)?.as_u64()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // json has no NaN/inf; readers map null back to NaN.
        "null".to_string()
    }
}

/// Eq. (1): `(max - avg) / max` over finite loads (0 when empty or
/// max ≤ 0).
fn load_balance(loads: &[f64]) -> f64 {
    let finite: Vec<f64> = loads.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return 0.0;
    }
    let max = finite.iter().fold(0.0f64, |a, &b| a.max(b));
    if max <= 0.0 {
        return 0.0;
    }
    let avg = finite.iter().sum::<f64>() / finite.len() as f64;
    (max - avg) / max
}

/// Parse and analyze a `cubesfc-trace-v1` document in one call.
///
/// JSON syntax errors come back verbatim from [`crate::json_parse`]
/// (with line/column positions); callers that need to distinguish
/// malformed input (exit 2) from schema violations (exit 1) parse first
/// and call [`analyze_doc`] themselves.
pub fn analyze_trace(text: &str, cfg: &AnalyzeConfig) -> Result<TraceAnalysis, String> {
    analyze_doc(&parse(text)?, cfg)
}

/// Analyze a parsed `cubesfc-trace-v1` document.
pub fn analyze_doc(doc: &JsonValue, cfg: &AnalyzeConfig) -> Result<TraceAnalysis, String> {
    let schema = doc
        .get("otherData")
        .and_then(|o| o.get("schema"))
        .and_then(|s| s.as_str())
        .unwrap_or("<missing>");
    if schema != TRACE_SCHEMA {
        return Err(format!(
            "not a {TRACE_SCHEMA} document (schema: {schema:?})"
        ));
    }
    let dropped_events = doc
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(|d| d.as_u64())
        .unwrap_or(0);
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or("traceEvents array missing")?;

    // Pass 1: tid → lane name from the thread_name metadata the
    // exporter guarantees (chrome.rs), timeline events bucketed per tid
    // in document order — the exporter's stable time sort preserves
    // each lane's begin/end order.
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    let mut per_tid: BTreeMap<u64, Vec<&JsonValue>> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let tid = ev.get("tid").and_then(|t| t.as_u64());
        match ph {
            "M" if ev.get("name").and_then(|n| n.as_str()) == Some("thread_name") => {
                if let (Some(tid), Some(name)) = (
                    tid,
                    ev.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|n| n.as_str()),
                ) {
                    names.insert(tid, name.to_string());
                }
            }
            "B" | "E" | "i" => {
                if let Some(tid) = tid {
                    per_tid.entry(tid).or_default().push(ev);
                }
            }
            _ => {}
        }
    }

    // Pass 2: per-tid interval reconstruction via a begin stack.
    let mut lanes: Vec<LaneTimeline> = Vec::with_capacity(per_tid.len().max(names.len()));
    for (tid, evs) in &per_tid {
        let mut lane = LaneTimeline {
            name: names
                .get(tid)
                .cloned()
                .unwrap_or_else(|| format!("tid {tid}")),
            first_ns: u64::MAX,
            ..LaneTimeline::default()
        };
        // Open begins: (name, start_ns, elements arg).
        let mut stack: Vec<(String, u64, u64)> = Vec::new();
        for ev in evs {
            let Some(ts) = ev.get("ts").and_then(ts_to_ns) else {
                continue; // unreadable timestamp: not a timeline event
            };
            lane.first_ns = lane.first_ns.min(ts);
            lane.last_ns = lane.last_ns.max(ts);
            match arg_u64(ev, "messages") {
                Some(m) => lane.messages += m,
                None => {
                    if arg_u64(ev, "bytes").is_some() {
                        lane.messages += 1;
                    }
                }
            }
            if let Some(b) = arg_u64(ev, "bytes") {
                lane.bytes += b;
            }
            match ev.get("ph").and_then(|p| p.as_str()) {
                Some("B") => {
                    let name = ev
                        .get("name")
                        .and_then(|n| n.as_str())
                        .unwrap_or("<unnamed>")
                        .to_string();
                    stack.push((name, ts, arg_u64(ev, "elements").unwrap_or(0)));
                }
                Some("E") => match stack.pop() {
                    Some((name, start, elements)) => lane.slices.push(Slice {
                        name,
                        start_ns: start,
                        dur_ns: ts.saturating_sub(start),
                        depth: stack.len() as u32,
                        elements,
                    }),
                    None => lane.unmatched_ends += 1,
                },
                Some("i") => lane.instants += 1,
                _ => {}
            }
        }
        // Drop-newest truncation loses the tail of a lane's stream:
        // close surviving begins at the lane's last timestamp.
        let last = lane.last_ns;
        while let Some((name, start, elements)) = stack.pop() {
            lane.unclosed_begins += 1;
            lane.slices.push(Slice {
                name,
                start_ns: start,
                dur_ns: last.saturating_sub(start),
                depth: stack.len() as u32,
                elements,
            });
        }
        if lane.first_ns == u64::MAX {
            lane.first_ns = 0;
        }
        lane.slices.sort_by(|a, b| {
            (a.start_ns, a.depth, a.name.as_str()).cmp(&(b.start_ns, b.depth, b.name.as_str()))
        });
        lanes.push(lane);
    }
    // Lanes that registered but never recorded still get a row.
    for (tid, name) in &names {
        if !per_tid.contains_key(tid) {
            lanes.push(LaneTimeline {
                name: name.clone(),
                ..LaneTimeline::default()
            });
        }
    }
    lanes.sort_by(|a, b| a.name.cmp(&b.name));

    Ok(build_analysis(dropped_events, lanes, cfg))
}

/// Segment boundaries from the `steps` lane's `step` slices, or one
/// whole-run segment over the rank lanes' extent.
fn segments_of(lanes: &[LaneTimeline], by_rank: &[&LaneTimeline]) -> Vec<(u64, u64)> {
    if let Some(steps) = lanes.iter().find(|l| l.name == "steps") {
        let segs: Vec<(u64, u64)> = steps
            .slices
            .iter()
            .filter(|s| s.name == "step")
            .map(|s| (s.start_ns, s.end_ns()))
            .collect();
        if !segs.is_empty() {
            return segs;
        }
    }
    let lo = by_rank.iter().map(|l| l.first_ns).min().unwrap_or(0);
    let hi = by_rank.iter().map(|l| l.last_ns).max().unwrap_or(0);
    if hi > lo {
        vec![(lo, hi)]
    } else {
        Vec::new()
    }
}

fn build_analysis(
    dropped_events: u64,
    lanes: Vec<LaneTimeline>,
    cfg: &AnalyzeConfig,
) -> TraceAnalysis {
    // Rank lanes in numeric rank order (lexicographic name order would
    // put "rank 10" before "rank 2").
    let mut by_rank: Vec<&LaneTimeline> = lanes
        .iter()
        .filter(|l| rank_index(&l.name).is_some())
        .collect();
    by_rank.sort_by_key(|l| rank_index(&l.name).unwrap());
    let rank_ids: Vec<usize> = by_rank
        .iter()
        .map(|l| rank_index(&l.name).unwrap())
        .collect();

    let segments = segments_of(&lanes, &by_rank);

    // Wait-state decomposition: integer nanoseconds over all slices of
    // the rank lanes, so Σ buckets == Σ raw slice durations exactly.
    let mut decomposition_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_ns = 0u64;
    for lane in &by_rank {
        for (name, ns) in lane.phase_ns() {
            *decomposition_ns.entry(name).or_insert(0) += ns;
        }
        total_ns += lane.total_slice_ns();
    }
    let wait_ns = decomposition_ns.get("wait").copied().unwrap_or(0);

    // Per-segment bottleneck chain, critical path, and Eq.-(1) series.
    let nseg = segments.len();
    let mut per_segment_work = vec![vec![0.0f64; by_rank.len()]; nseg];
    let mut bottleneck_counts: BTreeMap<usize, usize> = rank_ids.iter().map(|&r| (r, 0)).collect();
    let mut attributed_wait: BTreeMap<usize, f64> = rank_ids.iter().map(|&r| (r, 0.0)).collect();
    let mut cp_seconds = 0.0;
    let mut cp_phases: BTreeMap<String, f64> = BTreeMap::new();
    let mut lb_measured = Vec::with_capacity(nseg);
    let mut lb_elements = Vec::with_capacity(nseg);
    for (k, &(a, b)) in segments.iter().enumerate() {
        let n = by_rank.len();
        let mut work = vec![0.0f64; n];
        let mut waits = vec![0.0f64; n];
        let mut compute = vec![0.0f64; n];
        let mut elements = vec![0.0f64; n];
        for (i, lane) in by_rank.iter().enumerate() {
            for s in &lane.slices {
                let secs = s.overlap_ns(a, b) as f64 / 1e9;
                if s.depth == 0 && s.name != "wait" {
                    work[i] += secs;
                }
                match s.name.as_str() {
                    "wait" => waits[i] += secs,
                    "compute" => {
                        compute[i] += secs;
                        if s.starts_in(a, b) {
                            elements[i] += s.elements as f64;
                        }
                    }
                    _ => {}
                }
            }
            per_segment_work[k][i] = work[i];
        }
        // Bottleneck: the rank with the most productive time in the
        // segment (first wins on exact ties, for determinism). Wall
        // occupancy would tie at the barrier; work singles out the rank
        // holding the step open.
        let mut bi = None;
        for (i, &v) in work.iter().enumerate() {
            if bi.is_none_or(|j: usize| v > work[j]) {
                bi = Some(i);
            }
        }
        if let Some(bi) = bi {
            let bottleneck_rank = rank_ids[bi];
            *bottleneck_counts.entry(bottleneck_rank).or_insert(0) += 1;
            cp_seconds += work[bi];
            for s in &by_rank[bi].slices {
                let ov = s.overlap_ns(a, b);
                if s.depth == 0 && s.name != "wait" && ov > 0 {
                    *cp_phases.entry(s.name.clone()).or_insert(0.0) += ov as f64 / 1e9;
                }
            }
            let others_wait: f64 = waits
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != bi)
                .map(|(_, w)| w)
                .sum();
            *attributed_wait.entry(bottleneck_rank).or_insert(0.0) += others_wait;
        }
        lb_measured.push(load_balance(&compute));
        lb_elements.push(load_balance(&elements));
    }

    let straggler = bottleneck_counts
        .iter()
        .filter(|&(_, &n)| n > 0)
        .max_by_key(|&(r, &n)| (n, std::cmp::Reverse(*r)))
        .map(|(&rank, &n)| Straggler {
            rank,
            bottleneck_segments: n,
            attributed_wait_s: attributed_wait.get(&rank).copied().unwrap_or(0.0),
        });

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let maxv = |v: &[f64]| v.iter().fold(0.0f64, |a, &b| a.max(b));

    let bytes_total: u64 = by_rank.iter().map(|l| l.bytes).sum();
    let messages: u64 = by_rank.iter().map(|l| l.messages).sum();
    let predicted_comm_s =
        messages as f64 * cfg.comm.alpha_s + bytes_total as f64 / cfg.comm.beta_bytes_per_s;
    let wait_s = wait_ns as f64 / 1e9;
    let comm_blame_fraction = if wait_s > 0.0 {
        (predicted_comm_s / wait_s).min(1.0)
    } else {
        0.0
    };

    let lb_measured_mean = mean(&lb_measured);
    let lb_elements_mean = mean(&lb_elements);

    TraceAnalysis {
        dropped_events,
        ranks: RankSummary {
            ranks: rank_ids,
            decomposition_ns,
            total_ns,
            wait_ns,
            straggler,
            per_segment_work,
        },
        critical_path: CriticalPath {
            seconds: cp_seconds,
            segments: nseg,
            phases: cp_phases,
            bottlenecks: bottleneck_counts.into_iter().collect(),
        },
        imbalance: Imbalance {
            lb_measured_mean,
            lb_measured_max: maxv(&lb_measured),
            lb_elements_mean,
            lb_elements_max: maxv(&lb_elements),
            gap: lb_measured_mean - lb_elements_mean,
            bytes_total,
            messages,
            predicted_comm_s,
            comm_blame_fraction,
        },
        comm: cfg.comm,
        lanes,
    }
}

impl TraceAnalysis {
    /// Serialize as a `cubesfc-analysis-v1` JSON document. Key order is
    /// fixed and floats use shortest-roundtrip formatting, so the same
    /// trace always produces identical bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"schema\":\"{ANALYSIS_SCHEMA}\",\"dropped_events\":{},\"lanes\":[",
            self.dropped_events
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"slices\":{},\"instants\":{},\"unmatched_ends\":{},\
                 \"unclosed_begins\":{},\"extent_ns\":{},\"busy_ns\":{},\"total_slice_ns\":{},\
                 \"utilization\":{},\"wait_fraction\":{},\"phases\":{{",
                escape(&lane.name),
                lane.slices.len(),
                lane.instants,
                lane.unmatched_ends,
                lane.unclosed_begins,
                lane.extent_ns(),
                lane.busy_ns(),
                lane.total_slice_ns(),
                json_f64(lane.utilization()),
                json_f64(lane.wait_fraction()),
            );
            for (j, (name, ns)) in lane.phase_ns().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{ns}", escape(name));
            }
            s.push_str("}}");
        }
        let _ = write!(
            s,
            "],\"ranks\":{{\"count\":{},\"segments\":{},\"total_s\":{},\"wait_s\":{},\
             \"wait_fraction\":{},\"decomposition\":{{",
            self.ranks.ranks.len(),
            self.critical_path.segments,
            json_f64(self.ranks.total_ns as f64 / 1e9),
            json_f64(self.ranks.wait_ns as f64 / 1e9),
            json_f64(self.ranks.wait_fraction()),
        );
        for (j, (name, ns)) in self.ranks.decomposition_ns.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", escape(name), json_f64(*ns as f64 / 1e9));
        }
        s.push_str("},\"straggler\":");
        match &self.ranks.straggler {
            Some(st) => {
                let _ = write!(
                    s,
                    "{{\"rank\":{},\"bottleneck_segments\":{},\"attributed_wait_s\":{}}}",
                    st.rank,
                    st.bottleneck_segments,
                    json_f64(st.attributed_wait_s)
                );
            }
            None => s.push_str("null"),
        }
        let _ = write!(
            s,
            "}},\"critical_path\":{{\"seconds\":{},\"segments\":{},\"phases\":{{",
            json_f64(self.critical_path.seconds),
            self.critical_path.segments,
        );
        for (j, (name, secs)) in self.critical_path.phases.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let pct = if self.critical_path.seconds > 0.0 {
                secs / self.critical_path.seconds * 100.0
            } else {
                0.0
            };
            let _ = write!(
                s,
                "\"{}\":{{\"seconds\":{},\"pct\":{}}}",
                escape(name),
                json_f64(*secs),
                json_f64(pct)
            );
        }
        s.push_str("},\"bottlenecks\":[");
        for (j, (rank, count)) in self.critical_path.bottlenecks.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{rank},{count}]");
        }
        let im = &self.imbalance;
        let _ = write!(
            s,
            "]}},\"imbalance\":{{\"lb_measured_mean\":{},\"lb_measured_max\":{},\
             \"lb_elements_mean\":{},\"lb_elements_max\":{},\"gap\":{},\"comm\":{{\
             \"alpha_s\":{},\"beta_bytes_per_s\":{},\"bytes_total\":{},\"messages\":{},\
             \"predicted_comm_s\":{},\"wait_s\":{},\"comm_blame_fraction\":{}}}}}}}",
            json_f64(im.lb_measured_mean),
            json_f64(im.lb_measured_max),
            json_f64(im.lb_elements_mean),
            json_f64(im.lb_elements_max),
            json_f64(im.gap),
            json_f64(self.comm.alpha_s),
            json_f64(self.comm.beta_bytes_per_s),
            im.bytes_total,
            im.messages,
            json_f64(im.predicted_comm_s),
            json_f64(self.ranks.wait_ns as f64 / 1e9),
            json_f64(im.comm_blame_fraction),
        );
        s
    }

    /// Render the fixed-width terminal report: lane table, wait-state
    /// decomposition, critical path, imbalance attribution, and
    /// per-rank busy-seconds sparklines (one point per segment) through
    /// the shared [`SeriesBank`] path.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace analysis ({ANALYSIS_SCHEMA}), {} lane(s), {} dropped event(s)",
            self.lanes.len(),
            self.dropped_events
        );

        if !self.lanes.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<24} {:>8} {:>12} {:>12} {:>7} {:>7} {:>9} {:>9}",
                "lane",
                "slices",
                "busy(ms)",
                "total(ms)",
                "util%",
                "wait%",
                "unclosed",
                "unmatched"
            );
            for lane in &self.lanes {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>12.3} {:>12.3} {:>7.1} {:>7.1} {:>9} {:>9}",
                    lane.name,
                    lane.slices.len(),
                    lane.busy_ns() as f64 / 1e6,
                    lane.total_slice_ns() as f64 / 1e6,
                    lane.utilization() * 100.0,
                    lane.wait_fraction() * 100.0,
                    lane.unclosed_begins,
                    lane.unmatched_ends,
                );
            }
        }

        if !self.ranks.ranks.is_empty() {
            let _ = writeln!(
                out,
                "\nwait-state decomposition ({} rank lane(s))",
                self.ranks.ranks.len()
            );
            let total = self.ranks.total_ns.max(1) as f64;
            for (name, ns) in &self.ranks.decomposition_ns {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12.3} ms {:>6.1}%",
                    name,
                    *ns as f64 / 1e6,
                    *ns as f64 / total * 100.0
                );
            }
            let _ = writeln!(
                out,
                "  {:<16} {:>12.3} ms  wait fraction {:.1}%",
                "total",
                self.ranks.total_ns as f64 / 1e6,
                self.ranks.wait_fraction() * 100.0
            );
        }

        let cp = &self.critical_path;
        let _ = writeln!(
            out,
            "\ncritical path: {:.3} ms across {} segment(s)",
            cp.seconds * 1e3,
            cp.segments
        );
        for (name, secs) in &cp.phases {
            let pct = if cp.seconds > 0.0 {
                secs / cp.seconds * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "  {:<16} {:>12.3} ms {:>6.1}%", name, secs * 1e3, pct);
        }
        let chain: Vec<String> = cp
            .bottlenecks
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(r, n)| format!("rank {r} ×{n}"))
            .collect();
        if !chain.is_empty() {
            let _ = writeln!(out, "  bottleneck chain: {}", chain.join(", "));
        }
        if let Some(st) = &self.ranks.straggler {
            let _ = writeln!(
                out,
                "  straggler: rank {} ({} segment(s), {:.3} ms induced wait)",
                st.rank,
                st.bottleneck_segments,
                st.attributed_wait_s * 1e3
            );
        }

        let im = &self.imbalance;
        let _ = writeln!(out, "\nimbalance attribution (Eq. 1)");
        let _ = writeln!(
            out,
            "  measured compute LB:  mean {:.4}  max {:.4}",
            im.lb_measured_mean, im.lb_measured_max
        );
        let _ = writeln!(
            out,
            "  element-count LB:     mean {:.4}  max {:.4}",
            im.lb_elements_mean, im.lb_elements_max
        );
        let _ = writeln!(out, "  unpredicted gap:      {:.4}", im.gap);
        let _ = writeln!(
            out,
            "  comm model: α={:.1e} s, β={:.3e} B/s; {} B in {} message(s) → {:.3} ms predicted",
            self.comm.alpha_s,
            self.comm.beta_bytes_per_s,
            im.bytes_total,
            im.messages,
            im.predicted_comm_s * 1e3
        );
        let _ = writeln!(
            out,
            "  comm explains {:.1}% of {:.3} ms measured wait",
            im.comm_blame_fraction * 100.0,
            self.ranks.wait_ns as f64 / 1e6
        );

        // Per-rank productive seconds per segment through the shared
        // SeriesBank sparkline path (lane "analysis", seq = segment).
        if !self.ranks.per_segment_work.is_empty() {
            let mut bank = SeriesBank::new(self.ranks.per_segment_work.len());
            for (k, busy) in self.ranks.per_segment_work.iter().enumerate() {
                bank.ingest(&TelemetrySample {
                    seq: k as u64,
                    lane: "analysis".to_string(),
                    step: k as u64,
                    gauges: BTreeMap::new(),
                    counters: BTreeMap::new(),
                    quantiles: BTreeMap::new(),
                    ranks: busy.clone(),
                    alerts: Vec::new(),
                });
            }
            let _ = writeln!(out, "\nper-rank productive seconds per segment");
            out.push_str(&bank.render(0));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Baseline comparison

/// One gated metric in an analysis comparison.
#[derive(Clone, Debug)]
pub struct AnalysisDelta {
    /// Metric path (e.g. `critical_path/seconds`).
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent for absolute metrics; change in
    /// percentage *points* for fraction metrics.
    pub change: f64,
    /// Whether the change crossed the threshold.
    pub regressed: bool,
}

/// The diff of two `cubesfc-analysis-v1` documents.
#[derive(Clone, Debug)]
pub struct AnalysisCompare {
    /// Gated and informational metrics, in report order.
    pub deltas: Vec<AnalysisDelta>,
    /// Threshold (percent / percentage points) the gates used.
    pub threshold_pct: f64,
}

impl AnalysisCompare {
    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// Render a human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "analysis comparison (threshold {:.0}%)",
            self.threshold_pct
        );
        let _ = writeln!(
            out,
            "\n{:<28} {:>14} {:>14} {:>10}  status",
            "metric", "old", "new", "change"
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "{:<28} {:>14.6} {:>14.6} {:>9.1}{}  {}",
                d.name,
                d.old,
                d.new,
                d.change,
                if d.name.ends_with("fraction") {
                    "pp"
                } else {
                    "%"
                },
                if d.regressed { "REGRESSED" } else { "ok" },
            );
        }
        let n = self.regressions();
        if n == 0 {
            let _ = writeln!(out, "\nno regressions");
        } else {
            let _ = writeln!(out, "\n{n} regression(s)");
        }
        out
    }
}

fn analysis_metric(doc: &JsonValue, group: &str, key: &str) -> f64 {
    doc.get(group)
        .and_then(|g| g.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0)
}

/// Compare two `cubesfc-analysis-v1` JSON documents against a
/// regression threshold.
///
/// Two metrics gate (mirroring `compare_profiles`): critical-path
/// seconds regress when they grow by more than `threshold_pct` percent;
/// the rank wait fraction regresses when it grows by more than
/// `threshold_pct` percentage *points*. Total rank seconds ride along
/// as an informational row. Errors on malformed JSON or wrong schema.
pub fn compare_analyses(
    old_json: &str,
    new_json: &str,
    threshold_pct: f64,
) -> Result<AnalysisCompare, String> {
    let old = parse(old_json).map_err(|e| format!("baseline analysis: {e}"))?;
    let new = parse(new_json).map_err(|e| format!("new analysis: {e}"))?;
    for (side, doc) in [("baseline", &old), ("new", &new)] {
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(ANALYSIS_SCHEMA) => {}
            Some(s) => {
                return Err(format!(
                    "{side} analysis: unsupported schema {s:?} (want {ANALYSIS_SCHEMA:?})"
                ))
            }
            None => {
                return Err(format!(
                    "{side} analysis: missing \"schema\" key — not an analysis document"
                ))
            }
        }
    }

    let mut deltas = Vec::new();
    let (cp_old, cp_new) = (
        analysis_metric(&old, "critical_path", "seconds"),
        analysis_metric(&new, "critical_path", "seconds"),
    );
    let cp_change = if cp_old > 0.0 {
        (cp_new / cp_old - 1.0) * 100.0
    } else {
        0.0
    };
    deltas.push(AnalysisDelta {
        name: "critical_path/seconds".to_string(),
        old: cp_old,
        new: cp_new,
        change: cp_change,
        regressed: cp_change > threshold_pct,
    });
    let (wf_old, wf_new) = (
        analysis_metric(&old, "ranks", "wait_fraction"),
        analysis_metric(&new, "ranks", "wait_fraction"),
    );
    let wf_change = (wf_new - wf_old) * 100.0;
    deltas.push(AnalysisDelta {
        name: "ranks/wait_fraction".to_string(),
        old: wf_old,
        new: wf_new,
        change: wf_change,
        regressed: wf_change > threshold_pct,
    });
    let (ts_old, ts_new) = (
        analysis_metric(&old, "ranks", "total_s"),
        analysis_metric(&new, "ranks", "total_s"),
    );
    deltas.push(AnalysisDelta {
        name: "ranks/total_s".to_string(),
        old: ts_old,
        new: ts_new,
        change: if ts_old > 0.0 {
            (ts_new / ts_old - 1.0) * 100.0
        } else {
            0.0
        },
        regressed: false,
    });
    Ok(AnalysisCompare {
        deltas,
        threshold_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MockClock, Tracer};
    use std::sync::Arc;

    fn analyze(tracer: &Tracer) -> TraceAnalysis {
        analyze_trace(&tracer.export_chrome(), &AnalyzeConfig::default()).unwrap()
    }

    fn lane<'a>(a: &'a TraceAnalysis, name: &str) -> &'a LaneTimeline {
        a.lanes.iter().find(|l| l.name == name).unwrap()
    }

    #[test]
    fn schema_mismatch_and_garbage_error_out() {
        let cfg = AnalyzeConfig::default();
        let err = analyze_trace(
            "{\"otherData\":{\"schema\":\"nope\"},\"traceEvents\":[]}",
            &cfg,
        )
        .unwrap_err();
        assert!(err.contains("cubesfc-trace-v1"), "{err}");
        // Syntax errors surface json_parse's line/column diagnostics.
        let err = analyze_trace("{\"otherData\":", &cfg).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn round_trip_reconstructs_slices_and_args() {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
        let r0 = tracer.lane("rank 0");
        let r1 = tracer.lane("rank 1");
        r0.slice_at("compute", 0, 3_000, &[("elements", 10)]);
        r0.slice_at("wait", 3_000, 4_000, &[]);
        r1.slice_at("compute", 0, 1_000, &[("elements", 2)]);
        r1.slice_at("wait", 1_000, 4_000, &[]);
        r1.instant_at("recv", 500, &[("bytes", 64)]);

        let a = analyze(&tracer);
        let l0 = lane(&a, "rank 0");
        assert_eq!(l0.slices.len(), 2);
        assert_eq!(l0.slices[0].name, "compute");
        assert_eq!(l0.slices[0].elements, 10);
        assert_eq!(l0.total_slice_ns(), 4_000);
        assert_eq!(l0.busy_ns(), 4_000);
        assert!((l0.utilization() - 1.0).abs() < 1e-12);
        let l1 = lane(&a, "rank 1");
        assert_eq!(l1.bytes, 64);
        assert_eq!(l1.messages, 1);
        assert_eq!(l1.instants, 1);
        // Decomposition: total == compute + wait, in exact integer ns.
        assert_eq!(a.ranks.total_ns, 8_000);
        assert_eq!(a.ranks.decomposition_ns["compute"], 4_000);
        assert_eq!(a.ranks.decomposition_ns["wait"], 4_000);
        assert_eq!(a.ranks.wait_ns, 4_000);
        // One whole-run segment: rank 0 is the bottleneck (3µs of
        // productive work vs 1µs), charged with rank 1's 3µs wait.
        assert_eq!(a.critical_path.segments, 1);
        assert!((a.critical_path.seconds - 3e-6).abs() < 1e-15);
        let st = a.ranks.straggler.unwrap();
        assert_eq!(st.rank, 0);
        assert_eq!(st.bottleneck_segments, 1);
        assert!((st.attributed_wait_s - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn unmatched_ends_are_tolerated_not_fatal() {
        // An E with no B (its begin was truncated away) must not panic
        // and must be counted, not silently dropped.
        let doc = format!(
            "{{\"otherData\":{{\"schema\":\"{TRACE_SCHEMA}\",\"droppedEvents\":7}},\
             \"traceEvents\":[\
             {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":\"rank 0\"}}}},\
             {{\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":1.000}},\
             {{\"name\":\"compute\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":2.000}},\
             {{\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":5.000}}]}}"
        );
        let a = analyze_trace(&doc, &AnalyzeConfig::default()).unwrap();
        assert_eq!(a.dropped_events, 7);
        let l = lane(&a, "rank 0");
        assert_eq!(l.unmatched_ends, 1);
        assert_eq!(l.slices.len(), 1);
        assert_eq!(l.slices[0].dur_ns, 3_000);
    }

    #[test]
    fn unclosed_begins_close_at_lane_end() {
        // Drop-newest truncation loses the tail: open begins close at
        // the lane's last observed timestamp.
        let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
        let r0 = tracer.lane("rank 0");
        r0.slice_at("compute", 0, 2_000, &[]);
        r0.begin_at("pack", 2_000, &[("bytes", 128)]);
        // A later instant extends the lane past the dangling begin.
        r0.instant_at("send", 6_000, &[("bytes", 128)]);
        let a = analyze(&tracer);
        let l = lane(&a, "rank 0");
        assert_eq!(l.unclosed_begins, 1);
        let pack = l.slices.iter().find(|s| s.name == "pack").unwrap();
        assert_eq!(pack.start_ns, 2_000);
        assert_eq!(pack.dur_ns, 4_000, "closed at the lane's last ts");
        assert_eq!(l.bytes, 256);
    }

    #[test]
    fn zero_duration_slices_are_legal() {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
        let r0 = tracer.lane("rank 0");
        r0.slice_at("compute", 0, 1_000, &[]);
        r0.slice_at("wait", 1_000, 1_000, &[]); // perfectly balanced rank
        let a = analyze(&tracer);
        let l = lane(&a, "rank 0");
        assert_eq!(l.slices.len(), 2);
        assert_eq!(l.total_slice_ns(), 1_000);
        assert_eq!(a.ranks.decomposition_ns["wait"], 0);
        // And the zero-duration slice still shows up in the phase map.
        assert!(l.phase_ns().contains_key("wait"));
    }

    #[test]
    fn truncated_ring_keeps_exact_dropped_accounting() {
        // Tiny per-shard capacity: the ring drops newest events with an
        // exact count that must survive export → analysis.
        let tracer = Tracer::with_clock_and_capacity(Arc::new(MockClock::new()), 4);
        let r0 = tracer.lane("rank 0");
        for i in 0..8u64 {
            r0.slice_at("compute", i * 10, i * 10 + 5, &[]);
        }
        let dropped = tracer.dropped_events();
        assert!(dropped > 0);
        let a = analyze(&tracer);
        assert_eq!(a.dropped_events, dropped);
        // Whatever survived still reconstructs without panicking, and
        // every surviving event is attributed somewhere.
        let l = lane(&a, "rank 0");
        assert_eq!(
            l.slices.len() as u64 * 2 - l.unclosed_begins + l.unmatched_ends + l.instants,
            4,
        );
    }

    #[test]
    fn phase_totals_equal_sum_of_raw_slice_durations() {
        // Property test: for pseudo-random balanced-and-unbalanced
        // timelines, per-lane phase totals equal the summed raw slice
        // durations, and the rank decomposition equals the summed lane
        // totals — exactly, in integer nanoseconds.
        let mut state = 0x5EED_CAFE_u64;
        let mut rng = move || {
            // xorshift64* — deterministic, no external crates.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let phases = ["compute", "pack", "wait", "scatter"];
        for _round in 0..16 {
            let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
            let nlanes = 1 + (rng() % 4) as usize;
            for r in 0..nlanes {
                let lane = tracer.lane(&format!("rank {r}"));
                let mut ts = 0u64;
                for _ in 0..(rng() % 20) {
                    let name = phases[(rng() % phases.len() as u64) as usize];
                    let dur = rng() % 1_000; // zero-duration included
                    lane.slice_at(name, ts, ts + dur, &[]);
                    ts += dur + rng() % 50;
                }
                if rng() % 3 == 0 {
                    lane.begin_at("compute", ts, &[]); // left unclosed
                }
            }
            let a = analyze(&tracer);
            let mut lane_total_sum = 0u64;
            for l in &a.lanes {
                let phase_sum: u64 = l.phase_ns().values().sum();
                assert_eq!(phase_sum, l.total_slice_ns(), "lane {}", l.name);
                lane_total_sum += l.total_slice_ns();
            }
            let decomp_sum: u64 = a.ranks.decomposition_ns.values().sum();
            assert_eq!(decomp_sum, a.ranks.total_ns);
            assert_eq!(a.ranks.total_ns, lane_total_sum);
        }
    }

    #[test]
    fn step_segments_drive_critical_path_and_imbalance() {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
        let steps = tracer.lane("steps");
        let r0 = tracer.lane("rank 0");
        let r1 = tracer.lane("rank 1");
        // Step 0: rank 0 slow (4µs vs 1µs), rank 1 waits 3µs.
        steps.slice_at("step", 0, 4_000, &[("step", 0)]);
        r0.slice_at("compute", 0, 4_000, &[("elements", 8)]);
        r1.slice_at("compute", 0, 1_000, &[("elements", 8)]);
        r1.slice_at("wait", 1_000, 4_000, &[]);
        // Step 1: rank 1 slow (2µs vs 1µs), rank 0 waits 1µs.
        steps.slice_at("step", 4_000, 6_000, &[("step", 1)]);
        r0.slice_at("compute", 4_000, 5_000, &[("elements", 8)]);
        r0.slice_at("wait", 5_000, 6_000, &[]);
        r1.slice_at("compute", 4_000, 6_000, &[("elements", 8)]);

        let a = analyze(&tracer);
        assert_eq!(a.critical_path.segments, 2);
        // Path = 4µs (rank 0 in step 0) + 2µs (rank 1 in step 1).
        assert!((a.critical_path.seconds - 6e-6).abs() < 1e-15);
        assert_eq!(a.critical_path.bottlenecks, vec![(0, 1), (1, 1)]);
        // Straggler tie on segment count resolves to the lower rank.
        let st = a.ranks.straggler.unwrap();
        assert_eq!(st.rank, 0);
        assert!((st.attributed_wait_s - 3e-6).abs() < 1e-15);
        // Elements are balanced, compute seconds are not: the measured
        // LB exceeds the element-count LB and the gap is positive.
        assert!(a.imbalance.lb_measured_mean > 0.2);
        assert_eq!(a.imbalance.lb_elements_mean, 0.0);
        assert!(a.imbalance.gap > 0.2);
    }

    #[test]
    fn analysis_json_is_deterministic_and_parseable() {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
        let steps = tracer.lane("steps");
        let r0 = tracer.lane("rank 0");
        steps.slice_at("step", 0, 2_000, &[("step", 0)]);
        r0.slice_at("compute", 0, 1_500, &[("elements", 3)]);
        r0.slice_at("wait", 1_500, 2_000, &[]);
        r0.instant_at("send", 100, &[("bytes", 4096)]);
        let text = tracer.export_chrome();
        let cfg = AnalyzeConfig::default();
        let j1 = analyze_trace(&text, &cfg).unwrap().to_json();
        let j2 = analyze_trace(&text, &cfg).unwrap().to_json();
        assert_eq!(j1, j2, "same trace bytes → same analysis bytes");
        let doc = parse(&j1).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(ANALYSIS_SCHEMA));
        assert_eq!(
            doc.get("imbalance")
                .unwrap()
                .get("comm")
                .unwrap()
                .get("bytes_total")
                .unwrap()
                .as_u64(),
            Some(4096)
        );
        // The render path is total: it never panics on real analyses.
        let rendered = analyze_trace(&text, &cfg).unwrap().render();
        assert!(rendered.contains("critical path"), "{rendered}");
        assert!(rendered.contains("wait-state decomposition"), "{rendered}");
    }

    #[test]
    fn compare_gates_on_critical_path_and_wait_fraction() {
        let mk = |slow: u64| {
            let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
            let steps = tracer.lane("steps");
            let r0 = tracer.lane("rank 0");
            let r1 = tracer.lane("rank 1");
            let end = 1_000 * slow;
            steps.slice_at("step", 0, end, &[("step", 0)]);
            r0.slice_at("compute", 0, end, &[("elements", 4)]);
            r1.slice_at("compute", 0, 1_000, &[("elements", 4)]);
            r1.slice_at("wait", 1_000, end, &[]);
            analyze(&tracer).to_json()
        };
        let base = mk(2); // cp 2µs, wait 1µs of 4µs sliced
        let same = mk(2);
        let slow = mk(6); // cp 6µs (+200%), wait 5µs of 12µs sliced

        let ok = compare_analyses(&base, &same, 25.0).unwrap();
        assert_eq!(ok.regressions(), 0);
        assert!(ok.render().contains("no regressions"));

        // cp +200% and wait fraction +16.7pp: both gate at 10.
        let bad = compare_analyses(&base, &slow, 10.0).unwrap();
        assert_eq!(bad.regressions(), 2, "{}", bad.render());
        assert!(bad.render().contains("REGRESSED"));
        // At 25 only the critical path crosses.
        assert_eq!(
            compare_analyses(&base, &slow, 25.0).unwrap().regressions(),
            1
        );
        // The improvement direction never gates.
        assert_eq!(
            compare_analyses(&slow, &base, 10.0).unwrap().regressions(),
            0
        );

        // Malformed / wrong-schema inputs are errors, not panics.
        assert!(compare_analyses("{bad", &base, 25.0)
            .unwrap_err()
            .contains("line 1"));
        assert!(compare_analyses(&base, "{\"schema\":\"x\"}", 25.0)
            .unwrap_err()
            .contains("unsupported schema"));
    }
}
