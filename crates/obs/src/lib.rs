//! `cubesfc-obs`: zero-dependency observability for the cubed-sphere
//! partitioning workspace.
//!
//! Three pieces:
//!
//! * **Phase-scoped span timers** — [`span`] returns an RAII guard; spans
//!   opened while another span is live on the same thread nest under it,
//!   producing slash-joined paths like `partition/coarsen/match`. Time
//!   comes from an injectable [`Clock`], so tests use [`MockClock`] and
//!   never sleep.
//! * **Mergeable metrics** — counters and log2-bucket histograms are
//!   written to per-thread shards (one mutex each, never contended in
//!   steady state) and merged into a [`Snapshot`] on demand; safe under
//!   Rayon-style fan-out.
//! * **Event timelines** — a bounded per-thread event ring buffer
//!   ([`Tracer`]) records begin/end slices and instant marks onto named
//!   *lanes* ([`Lane`]), so logical actors (virtual ranks, the DSS
//!   exchange) get their own timeline rows; [`Tracer::export_chrome`]
//!   writes Chrome Trace Event Format JSON openable in Perfetto.
//! * **Exporters & diffing** — `Snapshot::render_table()` (human-readable
//!   profile tree), `Snapshot::to_json()` (hand-rolled, stable
//!   `cubesfc-profile-v1` schema), and [`compare_profiles`], which diffs
//!   two profile documents against regression thresholds.
//!
//! The global registry and tracer are **disabled by default**: every
//! [`span`] / [`counter_add`] / [`histogram_record`] / [`trace_lane`]
//! call first does a single relaxed atomic load and returns immediately
//! when the corresponding feature is off, so instrumented hot paths cost
//! ~1ns (and allocate nothing) when unused. Explicit [`Registry`] and
//! [`Tracer`] instances (used in tests and embedders) always record.

mod access;
mod analysis;
mod chrome;
mod clock;
mod compare;
mod events;
mod health;
mod json;
mod prometheus;
mod render;
mod series;
mod snapshot;
mod telemetry;
mod value;

pub use access::{parse_access, AccessLog, AccessRecord, ACCESS_SCHEMA};
pub use analysis::{
    analyze_doc, analyze_trace, compare_analyses, AnalysisCompare, AnalysisDelta, AnalyzeConfig,
    CommModel, CriticalPath, Imbalance, LaneTimeline, RankSummary, Slice, Straggler, TraceAnalysis,
    ANALYSIS_SCHEMA,
};
pub use chrome::TRACE_SCHEMA;
pub use clock::{Clock, MockClock, MonotonicClock};
pub use compare::{compare_profiles, CompareConfig, CompareReport, Delta, DeltaStatus};
pub use events::{EventKind, Lane, LaneSpan, TraceEvent, Tracer};
pub use health::{default_rules, straggler_z, AlertEngine, AlertRule};
pub use json::{escape as json_escape, SCHEMA};
pub use series::Series;
pub use snapshot::{Bucket, HistogramSnapshot, Snapshot, SpanStat};
pub use telemetry::{parse_telemetry, Sampler, SeriesBank, TelemetrySample, TELEMETRY_SCHEMA};
pub use value::{
    parse as json_parse, parse_with_limits as json_parse_with_limits, JsonError, JsonErrorKind,
    JsonLimits, JsonValue,
};

use snapshot::{bucket_index, bucket_range, HIST_BUCKETS};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Shards

struct Histogram {
    count: u64,
    sum: u64,
    buckets: Box<[u64; HIST_BUCKETS]>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: Box::new([0; HIST_BUCKETS]),
        }
    }
}

/// One thread's private slice of a registry's metrics. Only its owning
/// thread writes to it (snapshot/reset readers lock briefly).
#[derive(Default)]
struct ShardData {
    timers: HashMap<String, SpanStat>,
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

// ---------------------------------------------------------------------------
// Registry

struct RegistryInner {
    id: u64,
    clock: Arc<dyn Clock>,
    /// Every shard ever handed to a thread. Arcs keep shard data alive
    /// after the owning thread exits, so no samples are lost.
    shards: Mutex<Vec<Arc<Mutex<ShardData>>>>,
}

/// A mergeable metrics registry. Cheap to clone (`Arc` inner); clones
/// share the same underlying metrics.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

thread_local! {
    static TLS: RefCell<TlsState> = RefCell::new(TlsState::default());
}

#[derive(Default)]
struct TlsState {
    /// registry id -> this thread's shard of that registry.
    shards: HashMap<u64, Arc<Mutex<ShardData>>>,
    /// registry id -> stack of full span paths currently open on this thread.
    stacks: HashMap<u64, Vec<String>>,
}

fn next_registry_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Registry {
    /// New registry using real monotonic time.
    pub fn new() -> Registry {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// New registry with an injected time source (tests: [`MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                id: next_registry_id(),
                clock,
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Run `f` on the calling thread's shard, creating and registering
    /// the shard on first use. Returns `None` only during thread
    /// teardown, when thread-local storage is gone.
    fn with_shard<R>(&self, f: impl FnOnce(&mut ShardData) -> R) -> Option<R> {
        let shard = TLS
            .try_with(|tls| {
                let mut tls = tls.borrow_mut();
                tls.shards
                    .entry(self.inner.id)
                    .or_insert_with(|| {
                        let shard = Arc::new(Mutex::new(ShardData::default()));
                        self.inner
                            .shards
                            .lock()
                            .expect("obs shard list poisoned")
                            .push(Arc::clone(&shard));
                        shard
                    })
                    .clone()
            })
            .ok()?;
        let mut data = shard.lock().expect("obs shard poisoned");
        Some(f(&mut data))
    }

    /// Open a span. Nested calls on the same thread extend the path with
    /// `/`. The returned guard records the elapsed time when dropped.
    pub fn span(&self, name: &str) -> SpanGuard {
        let path = TLS
            .try_with(|tls| {
                let mut tls = tls.borrow_mut();
                let stack = tls.stacks.entry(self.inner.id).or_default();
                let path = match stack.last() {
                    Some(parent) => format!("{parent}/{name}"),
                    None => name.to_string(),
                };
                stack.push(path.clone());
                path
            })
            .unwrap_or_else(|_| name.to_string());
        SpanGuard {
            active: Some(ActiveSpan {
                registry: self.clone(),
                path,
                start_ns: self.inner.clock.now_ns(),
            }),
            trace: None,
        }
    }

    /// Add `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with_shard(|s| *s.counters.entry(name.to_string()).or_insert(0) += delta);
    }

    /// Record one observation in the named log2-bucket histogram.
    pub fn histogram_record(&self, name: &str, value: u64) {
        self.with_shard(|s| {
            let h = s.histograms.entry(name.to_string()).or_default();
            h.count += 1;
            h.sum = h.sum.saturating_add(value);
            h.buckets[bucket_index(value)] += 1;
        });
    }

    /// Merge every thread's shard into one stable-ordered [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let shards = self.inner.shards.lock().expect("obs shard list poisoned");
        for shard in shards.iter() {
            let data = shard.lock().expect("obs shard poisoned");
            for (path, stat) in &data.timers {
                snap.timers
                    .entry(path.clone())
                    .or_insert_with(SpanStat::new)
                    .merge(stat);
            }
            for (name, value) in &data.counters {
                *snap.counters.entry(name.clone()).or_insert(0) += value;
            }
            for (name, h) in &data.histograms {
                let out = snap.histograms.entry(name.clone()).or_default();
                out.count += h.count;
                out.sum = out.sum.saturating_add(h.sum);
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let (lo, hi) = bucket_range(i);
                    match out.buckets.iter_mut().find(|b| b.lo == lo) {
                        Some(b) => b.count += c,
                        None => out.buckets.push(Bucket { lo, hi, count: c }),
                    }
                }
            }
        }
        for h in snap.histograms.values_mut() {
            h.buckets.sort_by_key(|b| b.lo);
        }
        snap
    }

    /// Clear all recorded metrics (shards stay registered).
    pub fn reset(&self) {
        let shards = self.inner.shards.lock().expect("obs shard list poisoned");
        for shard in shards.iter() {
            let mut data = shard.lock().expect("obs shard poisoned");
            data.timers.clear();
            data.counters.clear();
            data.histograms.clear();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

// ---------------------------------------------------------------------------
// Span guard

struct ActiveSpan {
    registry: Registry,
    path: String,
    start_ns: u64,
}

/// RAII guard for a span; records elapsed time into the owning registry
/// when dropped, and closes the matching timeline slice when the span
/// was opened with tracing on. Inert (records nothing) when both
/// features were disabled at creation time.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Lane that received this span's `Begin` event; `End` fires on drop.
    trace: Option<Lane>,
}

impl SpanGuard {
    /// A guard that records nothing (what [`span`] returns when
    /// profiling is disabled).
    pub fn inert() -> SpanGuard {
        SpanGuard {
            active: None,
            trace: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(lane) = self.trace.take() {
            lane.end();
        }
        let Some(span) = self.active.take() else {
            return;
        };
        let elapsed = span
            .registry
            .inner
            .clock
            .now_ns()
            .saturating_sub(span.start_ns);
        let _ = TLS.try_with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(stack) = tls.stacks.get_mut(&span.registry.inner.id) {
                // Guards are scope-bound, so strict LIFO order holds; a
                // mismatch would mean a guard was moved across scopes.
                debug_assert_eq!(
                    stack.last(),
                    Some(&span.path),
                    "span guards dropped out of order"
                );
                stack.pop();
            }
        });
        span.registry.with_shard(|s| {
            s.timers
                .entry(span.path.clone())
                .or_insert_with(SpanStat::new)
                .record(elapsed);
        });
    }
}

// ---------------------------------------------------------------------------
// Global registry and tracer

/// Bit flags for the *global* instrumentation features, checked with a
/// single relaxed load on every instrumentation call. Bit 0 gates the
/// metrics registry, bit 1 the event-timeline tracer, bit 2 the
/// telemetry sampler, bit 3 the access log — one load answers every
/// question, so a call site never pays more than one atomic read.
static FLAGS: AtomicU8 = AtomicU8::new(0);

const FLAG_METRICS: u8 = 1;
const FLAG_TRACE: u8 = 1 << 1;
const FLAG_TELEMETRY: u8 = 1 << 2;
const FLAG_ACCESS: u8 = 1 << 3;

fn set_flag(bit: u8, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

fn global_cell() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide registry used by instrumented library code.
pub fn global() -> &'static Registry {
    global_cell()
}

/// The process-wide event tracer used by instrumented library code.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

/// Turn global profiling (metrics) on or off.
pub fn set_enabled(on: bool) {
    set_flag(FLAG_METRICS, on);
}

/// Is global profiling currently on?
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_METRICS != 0
}

/// Turn global event-timeline tracing on or off.
pub fn set_trace_enabled(on: bool) {
    set_flag(FLAG_TRACE, on);
}

/// Is global event tracing currently on?
pub fn trace_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TRACE != 0
}

/// A handle to the named timeline lane of the global tracer, or an
/// inert handle (records nothing, allocates nothing) when tracing is
/// off. Like spans, a lane acquired while tracing was on keeps
/// recording even if tracing is disabled afterwards.
#[inline]
pub fn trace_lane(name: &str) -> Lane {
    if FLAGS.load(Ordering::Relaxed) & FLAG_TRACE == 0 {
        return Lane::inert();
    }
    tracer().lane(name)
}

/// Record an instant event on the calling OS thread's implicit lane of
/// the global tracer; no-op when tracing is disabled.
#[inline]
pub fn trace_instant(name: &str, args: &[(&str, u64)]) {
    if FLAGS.load(Ordering::Relaxed) & FLAG_TRACE == 0 {
        return;
    }
    tracer().thread_lane().instant(name, args);
}

/// Open a span on the global registry; inert when profiling is
/// disabled. When tracing is enabled the span also appears as a slice
/// on the calling thread's timeline lane, so every `--profile`
/// instrumentation point doubles as a `--trace` event with no extra
/// call sites.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    let flags = FLAGS.load(Ordering::Relaxed);
    if flags == 0 {
        return SpanGuard::inert();
    }
    let mut guard = if flags & FLAG_METRICS != 0 {
        global().span(name)
    } else {
        SpanGuard::inert()
    };
    if flags & FLAG_TRACE != 0 {
        let lane = tracer().thread_lane();
        lane.begin(name);
        guard.trace = Some(lane);
    }
    guard
}

/// Add to a global counter; no-op when profiling is disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    global().counter_add(name, delta);
}

/// Record into a global histogram; no-op when profiling is disabled.
#[inline]
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    global().histogram_record(name, value);
}

/// Snapshot the global registry (works whether or not profiling is on).
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clear the global registry.
pub fn reset() {
    global().reset();
}

/// The process-wide telemetry sampler used by instrumented library
/// code: real clock, the global registry, default window capacity.
pub fn telemetry() -> &'static Sampler {
    static GLOBAL: OnceLock<Sampler> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Sampler::with_clock_and_capacity(
            Arc::new(MonotonicClock::new()),
            global().clone(),
            telemetry::DEFAULT_SAMPLE_CAPACITY,
        )
    })
}

/// Turn global telemetry sampling on or off.
pub fn set_telemetry_enabled(on: bool) {
    set_flag(FLAG_TELEMETRY, on);
}

/// Is global telemetry sampling currently on?
pub fn telemetry_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TELEMETRY != 0
}

/// Record one sample on the global sampler's `lane` at `step`; a single
/// relaxed load and no allocation when telemetry is disabled.
#[inline]
pub fn telemetry_record(lane: &str, step: u64, gauges: &[(&str, f64)], ranks: &[f64]) {
    if FLAGS.load(Ordering::Relaxed) & FLAG_TELEMETRY == 0 {
        return;
    }
    telemetry().record(lane, step, gauges, ranks);
}

/// The process-wide access log used by instrumented serving code:
/// bounded (default 2^16 records, oldest shed with an exact count).
pub fn access_log() -> &'static AccessLog {
    static GLOBAL: OnceLock<AccessLog> = OnceLock::new();
    GLOBAL.get_or_init(|| AccessLog::new(access::DEFAULT_ACCESS_CAPACITY))
}

/// Turn global access logging on or off.
pub fn set_access_enabled(on: bool) {
    set_flag(FLAG_ACCESS, on);
}

/// Is global access logging currently on?
pub fn access_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_ACCESS != 0
}

/// Append one request record to the global access log; a single relaxed
/// load and no allocation when access logging is disabled.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn access_record(
    id: &str,
    endpoint: &str,
    status: u16,
    cache: &str,
    queue_us: u64,
    service_us: u64,
    bytes_in: u64,
    bytes_out: u64,
    outcome: &str,
) {
    if FLAGS.load(Ordering::Relaxed) & FLAG_ACCESS == 0 {
        return;
    }
    access_log().push(
        id, endpoint, status, cache, queue_us, service_us, bytes_in, bytes_out, outcome,
    );
}

/// [`snapshot`] plus the observability layer's own health counters
/// (`obs/dropped_events`, `obs/dropped_samples`, `obs/dropped_access`),
/// so profile exports say when the bounded buffers were forced to shed
/// data.
pub fn export_snapshot() -> Snapshot {
    let mut snap = snapshot();
    snap.counters
        .insert("obs/dropped_events".to_string(), tracer().dropped_events());
    snap.counters.insert(
        "obs/dropped_samples".to_string(),
        telemetry().dropped_samples(),
    );
    snap.counters
        .insert("obs/dropped_access".to_string(), access_log().dropped());
    snap
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that toggle the process-global registry must not interleave.
    fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn mock_clock_spans_record_exact_durations() {
        let clock = Arc::new(MockClock::new());
        let reg = Registry::with_clock(clock.clone());
        {
            let _outer = reg.span("partition");
            clock.advance(100);
            {
                let _inner = reg.span("coarsen");
                clock.advance(40);
            }
            clock.advance(10);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timers["partition"].total_ns, 150);
        assert_eq!(snap.timers["partition/coarsen"].total_ns, 40);
        assert_eq!(snap.timers["partition"].count, 1);
    }

    #[test]
    fn sibling_spans_share_a_parent_path() {
        let clock = Arc::new(MockClock::new());
        let reg = Registry::with_clock(clock.clone());
        {
            let _solve = reg.span("step");
            for _ in 0..3 {
                let _dss = reg.span("dss");
                clock.advance(7);
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timers["step/dss"].count, 3);
        assert_eq!(snap.timers["step/dss"].total_ns, 21);
        assert_eq!(snap.timers["step/dss"].min_ns, 7);
        assert_eq!(snap.timers["step/dss"].max_ns, 7);
    }

    #[test]
    fn counters_merge_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.counter_add("ops", 1);
                    }
                    reg.histogram_record("size", 1024);
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["ops"], 4000);
        assert_eq!(snap.histograms["size"].count, 4);
        assert_eq!(snap.histograms["size"].buckets.len(), 1);
        assert_eq!(snap.histograms["size"].buckets[0].count, 4);
    }

    #[test]
    fn shards_survive_thread_exit() {
        let reg = Registry::new();
        std::thread::spawn({
            let reg = reg.clone();
            move || reg.counter_add("from_dead_thread", 5)
        })
        .join()
        .unwrap();
        assert_eq!(reg.snapshot().counters["from_dead_thread"], 5);
    }

    #[test]
    fn separate_registries_do_not_mix() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_add("x", 1);
        b.counter_add("x", 10);
        assert_eq!(a.snapshot().counters["x"], 1);
        assert_eq!(b.snapshot().counters["x"], 10);
    }

    #[test]
    fn reset_clears_but_keeps_recording() {
        let reg = Registry::new();
        reg.counter_add("n", 3);
        reg.reset();
        assert!(reg.snapshot().is_empty());
        reg.counter_add("n", 1);
        assert_eq!(reg.snapshot().counters["n"], 1);
    }

    #[test]
    fn disabled_global_records_nothing() {
        let _guard = global_test_lock();
        set_enabled(false);
        reset();
        {
            let _s = span("should_not_appear");
        }
        counter_add("should_not_appear", 1);
        histogram_record("should_not_appear", 1);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_global_records_and_disables_cleanly() {
        let _guard = global_test_lock();
        set_enabled(true);
        reset();
        {
            let _s = span("phase");
            counter_add("c", 2);
        }
        set_enabled(false);
        counter_add("c", 100); // ignored: profiling is off again
        let snap = snapshot();
        assert_eq!(snap.timers["phase"].count, 1);
        assert_eq!(snap.counters["c"], 2);
        reset();
    }

    #[test]
    fn span_disabled_mid_flight_still_records() {
        // A span opened while enabled records on drop even if profiling
        // was turned off in between: the guard captured the registry.
        let _guard = global_test_lock();
        set_enabled(true);
        reset();
        let s = span("in_flight");
        set_enabled(false);
        drop(s);
        assert_eq!(snapshot().timers["in_flight"].count, 1);
        reset();
    }

    #[test]
    fn global_trace_lane_gates_on_flag() {
        let _guard = global_test_lock();
        set_trace_enabled(false);
        tracer().reset();
        let inert = trace_lane("rank 0");
        inert.begin("compute");
        inert.end();
        trace_instant("never", &[]);
        assert_eq!(tracer().event_count(), 0);

        set_trace_enabled(true);
        let lane = trace_lane("rank 0");
        lane.begin_with("compute", &[("elements", 3)]);
        lane.end();
        set_trace_enabled(false);
        // Like spans, an acquired lane keeps recording after disable...
        lane.instant("late", &[]);
        // ...but new acquisitions are inert again.
        trace_lane("rank 1").instant("never", &[]);
        assert_eq!(tracer().event_count(), 3);
        tracer().reset();
    }

    #[test]
    fn global_span_emits_trace_slices_when_tracing_on() {
        let _guard = global_test_lock();
        set_enabled(false);
        set_trace_enabled(true);
        tracer().reset();
        {
            let _s = span("partition");
            let _inner = span("coarsen");
        }
        set_trace_enabled(false);
        let events = tracer().events();
        let begins: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(begins, vec!["partition", "coarsen"]);
        let ends = events.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(ends, 2);
        // Metrics stayed off: the registry saw nothing.
        assert!(snapshot().timers.is_empty());
        tracer().reset();
    }

    #[test]
    fn histogram_overflow_bucket_boundary() {
        // Values at and around the log2 overflow boundary land in the
        // top bucket [2^63, u64::MAX] without wrapping or panicking.
        let reg = Registry::new();
        reg.histogram_record("h", u64::MAX);
        reg.histogram_record("h", 1u64 << 63);
        reg.histogram_record("h", (1u64 << 63) - 1);
        let h = &reg.snapshot().histograms["h"];
        assert_eq!(h.count, 3);
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum, u64::MAX);
        let by_lo: Vec<(u64, u64, u64)> = h.buckets.iter().map(|b| (b.lo, b.hi, b.count)).collect();
        assert_eq!(
            by_lo,
            vec![(1u64 << 62, (1u64 << 63) - 1, 1), (1u64 << 63, u64::MAX, 2),]
        );
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        // A registry with zero recorded events still snapshots, renders,
        // and serializes to valid, schema-tagged JSON.
        let reg = Registry::new();
        let snap = reg.snapshot();
        assert!(snap.is_empty());
        assert!(snap.render_table().contains("no samples"));
        let json = snap.to_json();
        let doc = json_parse(&json).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert!(doc.get("timers").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn histogram_snapshot_merges_shard_buckets() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for v in [1u64, 1, 3, 1000] {
                let reg = reg.clone();
                s.spawn(move || reg.histogram_record("h", v));
            }
        });
        let h = &reg.snapshot().histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1005);
        // 1,1 -> bucket [1,1]; 3 -> [2,3]; 1000 -> [512,1023].
        let by_lo: Vec<(u64, u64)> = h.buckets.iter().map(|b| (b.lo, b.count)).collect();
        assert_eq!(by_lo, vec![(1, 2), (2, 1), (512, 1)]);
    }
}
