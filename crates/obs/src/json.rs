//! Hand-rolled JSON serialization for [`Snapshot`] (no serde: this crate
//! must build with no registry access).
//!
//! The schema is stable and versioned via the top-level `"schema"` key so
//! downstream tooling (`BENCH_*.json` consumers, `perf_snapshot` diffing)
//! can rely on it:
//!
//! ```json
//! {
//!   "schema": "cubesfc-profile-v1",
//!   "timers":     { "<path>": { "count": u, "total_ns": u, "min_ns": u,
//!                               "max_ns": u, "mean_ns": u } },
//!   "counters":   { "<name>": u },
//!   "histograms": { "<name>": { "count": u, "sum": u, "mean": u,
//!                               "buckets": [ { "lo": u, "hi": u, "count": u } ] } }
//! }
//! ```
//!
//! Keys are emitted in `BTreeMap` order, so output is byte-stable for a
//! given snapshot. All numbers are unsigned integers (no floats, so no
//! formatting ambiguity).

use crate::snapshot::{Bucket, HistogramSnapshot, Snapshot, SpanStat};
use crate::value::JsonValue;

/// Version tag written to every profile document.
pub const SCHEMA: &str = "cubesfc-profile-v1";

/// Escape a string for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn push_key(out: &mut String, key: &str) {
    out.push('"');
    out.push_str(&escape(key));
    out.push_str("\":");
}

impl Snapshot {
    /// Serialize to a compact single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_key(&mut out, "schema");
        out.push('"');
        out.push_str(SCHEMA);
        out.push('"');

        out.push(',');
        push_key(&mut out, "timers");
        out.push('{');
        for (i, (path, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, path);
            out.push_str(&format!(
                "{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
                t.count,
                t.total_ns,
                t.min_ns,
                t.max_ns,
                t.mean_ns()
            ));
        }
        out.push('}');

        out.push(',');
        push_key(&mut out, "counters");
        out.push('{');
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push('}');

        out.push(',');
        push_key(&mut out, "histograms");
        out.push('{');
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"mean\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.mean()
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"lo\":{},\"hi\":{},\"count\":{}}}",
                    b.lo, b.hi, b.count
                ));
            }
            out.push_str("]}");
        }
        out.push('}');
        out.push('}');
        out
    }

    /// Rebuild a snapshot from a parsed `cubesfc-profile-v1` document
    /// (the inverse of [`Snapshot::to_json`]; derived fields like
    /// `mean_ns` are ignored). This is what lets remote consumers — the
    /// `cubesfc top` dashboard polling `GET /metrics` — reuse the full
    /// quantile/render machinery on the wire format.
    pub fn from_json(doc: &JsonValue) -> Result<Snapshot, String> {
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?} is not {SCHEMA:?}"));
        }
        let obj = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_obj())
                .ok_or_else(|| format!("missing {key:?} object"))
        };
        let u64_of = |v: &JsonValue, what: &str| {
            v.as_u64()
                .ok_or_else(|| format!("{what} is not an unsigned integer"))
        };
        let field = |v: &JsonValue, key: &str, what: &str| {
            u64_of(
                v.get(key)
                    .ok_or_else(|| format!("{what} missing {key:?}"))?,
                what,
            )
        };

        let mut snap = Snapshot::default();
        for (path, t) in obj("timers")? {
            snap.timers.insert(
                path.clone(),
                SpanStat {
                    count: field(t, "count", path)?,
                    total_ns: field(t, "total_ns", path)?,
                    min_ns: field(t, "min_ns", path)?,
                    max_ns: field(t, "max_ns", path)?,
                },
            );
        }
        for (name, v) in obj("counters")? {
            snap.counters.insert(name.clone(), u64_of(v, name)?);
        }
        for (name, h) in obj("histograms")? {
            let mut hist = HistogramSnapshot {
                count: field(h, "count", name)?,
                sum: field(h, "sum", name)?,
                buckets: Vec::new(),
            };
            let buckets = h
                .get("buckets")
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("{name} missing \"buckets\" array"))?;
            for b in buckets {
                hist.buckets.push(Bucket {
                    lo: field(b, "lo", name)?,
                    hi: field(b, "hi", name)?,
                    count: field(b, "count", name)?,
                });
            }
            snap.histograms.insert(name.clone(), hist);
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Bucket, HistogramSnapshot, SpanStat};

    /// Minimal structural JSON validator: checks that the document is one
    /// well-formed JSON value (objects, arrays, strings, unsigned ints).
    fn validate(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut i = 0usize;
        fn skip_ws(bytes: &[u8], i: &mut usize) {
            while *i < bytes.len() && (bytes[*i] as char).is_whitespace() {
                *i += 1;
            }
        }
        fn value(bytes: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(bytes, i);
            match bytes.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    skip_ws(bytes, i);
                    if bytes.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        string(bytes, i)?;
                        skip_ws(bytes, i);
                        if bytes.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at {i:?}"));
                        }
                        *i += 1;
                        value(bytes, i)?;
                        skip_ws(bytes, i);
                        match bytes.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            other => return Err(format!("expected ',' or '}}', got {other:?}")),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    skip_ws(bytes, i);
                    if bytes.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(bytes, i)?;
                        skip_ws(bytes, i);
                        match bytes.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            other => return Err(format!("expected ',' or ']', got {other:?}")),
                        }
                    }
                }
                Some(b'"') => string(bytes, i),
                Some(c) if c.is_ascii_digit() => {
                    while matches!(bytes.get(*i), Some(c) if c.is_ascii_digit()) {
                        *i += 1;
                    }
                    Ok(())
                }
                other => Err(format!("unexpected {other:?} at {i:?}")),
            }
        }
        fn string(bytes: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(bytes, i);
            if bytes.get(*i) != Some(&b'"') {
                return Err(format!("expected '\"' at {i:?}"));
            }
            *i += 1;
            while let Some(&c) = bytes.get(*i) {
                match c {
                    b'\\' => *i += 2,
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }
        value(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if i != bytes.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(())
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_snapshot_is_valid_json_with_schema() {
        let json = Snapshot::default().to_json();
        validate(&json).unwrap();
        assert!(json.starts_with("{\"schema\":\"cubesfc-profile-v1\""));
        assert!(json.contains("\"timers\":{}"));
        assert!(json.contains("\"counters\":{}"));
        assert!(json.contains("\"histograms\":{}"));
    }

    #[test]
    fn populated_snapshot_round_trips_structurally() {
        let mut snap = Snapshot::default();
        let mut stat = SpanStat::new();
        stat.record(100);
        stat.record(300);
        snap.timers.insert("partition/coarsen".into(), stat);
        snap.counters.insert("dss/bytes".into(), 4096);
        snap.histograms.insert(
            "msg_size".into(),
            HistogramSnapshot {
                count: 2,
                sum: 3072,
                buckets: vec![Bucket {
                    lo: 1024,
                    hi: 2047,
                    count: 2,
                }],
            },
        );
        let json = snap.to_json();
        validate(&json).unwrap();
        assert!(json.contains("\"partition/coarsen\":{\"count\":2,\"total_ns\":400"));
        assert!(json.contains("\"dss/bytes\":4096"));
        assert!(json.contains("\"buckets\":[{\"lo\":1024,\"hi\":2047,\"count\":2}]"));
    }

    #[test]
    fn from_json_round_trips_a_populated_snapshot() {
        let mut snap = Snapshot::default();
        let mut stat = SpanStat::new();
        stat.record(100);
        stat.record(300);
        snap.timers.insert("serve/partition".into(), stat);
        snap.counters.insert("serve/requests".into(), 17);
        snap.histograms.insert(
            "serve/latency/partition_us".into(),
            HistogramSnapshot {
                count: 3,
                sum: 50,
                buckets: vec![
                    Bucket {
                        lo: 8,
                        hi: 15,
                        count: 2,
                    },
                    Bucket {
                        lo: 16,
                        hi: 31,
                        count: 1,
                    },
                ],
            },
        );
        let doc = crate::value::parse(&snap.to_json()).unwrap();
        let back = Snapshot::from_json(&doc).unwrap();
        assert_eq!(back, snap);
        // And the empty document round-trips too.
        let doc = crate::value::parse(&Snapshot::default().to_json()).unwrap();
        assert!(Snapshot::from_json(&doc).unwrap().is_empty());
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shape() {
        let doc = crate::value::parse("{\"schema\":\"nope\"}").unwrap();
        assert!(Snapshot::from_json(&doc).unwrap_err().contains("schema"));
        let doc = crate::value::parse("{\"schema\":\"cubesfc-profile-v1\",\"timers\":{}}").unwrap();
        assert!(Snapshot::from_json(&doc).unwrap_err().contains("counters"));
        let doc = crate::value::parse(
            "{\"schema\":\"cubesfc-profile-v1\",\"timers\":{},\
             \"counters\":{\"c\":-1},\"histograms\":{}}",
        )
        .unwrap();
        assert!(Snapshot::from_json(&doc).is_err());
    }

    #[test]
    fn output_is_deterministic_and_sorted() {
        let mut snap = Snapshot::default();
        snap.counters.insert("zeta".into(), 1);
        snap.counters.insert("alpha".into(), 2);
        let a = snap.to_json();
        let b = snap.to_json();
        assert_eq!(a, b);
        assert!(a.find("alpha").unwrap() < a.find("zeta").unwrap());
    }
}
