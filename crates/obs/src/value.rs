//! A minimal JSON reader (no serde: this crate must build with no
//! registry access).
//!
//! Parses a complete JSON document into a [`JsonValue`] tree. Built for
//! the profile comparator and trace schema checks, so it covers the
//! whole JSON grammar but optimises for nothing: strings, numbers
//! (integers kept exact as `u64`/`i64` where possible), booleans,
//! nulls, arrays, objects. Duplicate object keys keep the last value.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that is a non-negative integer fitting `u64` (exact).
    UInt(u64),
    /// A negative integer fitting `i64` (exact).
    Int(i64),
    /// Any other number (fractional or out of integer range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Resource limits applied while parsing untrusted input.
///
/// The parser recurses once per nesting level, so an adversarial
/// document like `"[".repeat(1 << 20)` would otherwise overflow the
/// stack; `max_depth` turns that into a structured [`JsonError`]. The
/// byte cap rejects oversized bodies before any work is done.
#[derive(Clone, Copy, Debug)]
pub struct JsonLimits {
    /// Maximum input size in bytes (inputs longer than this are
    /// rejected up front).
    pub max_bytes: usize,
    /// Maximum nesting depth of arrays/objects.
    pub max_depth: usize,
}

impl Default for JsonLimits {
    /// Generous defaults safe for every document this workspace emits:
    /// 64 MiB, 128 levels (profile/trace/telemetry documents nest < 8).
    fn default() -> JsonLimits {
        JsonLimits {
            max_bytes: 64 << 20,
            max_depth: 128,
        }
    }
}

/// What went wrong while parsing, as a machine-checkable class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// The input violates the JSON grammar.
    Syntax,
    /// Nesting exceeded [`JsonLimits::max_depth`].
    TooDeep,
    /// The input exceeded [`JsonLimits::max_bytes`].
    TooLarge,
}

/// A structured parse failure: the error class plus the 1-based
/// position the parser stopped at. [`std::fmt::Display`] renders the
/// historical `"<msg> at line L, column C"` format the CLI's exit-2
/// diagnostics rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// The error class.
    pub kind: JsonErrorKind,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (byte within the line) of the offending byte.
    pub column: usize,
    /// Human-readable description (no position suffix).
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing garbage is an error) with
/// the default [`JsonLimits`].
///
/// Errors carry a 1-based `line L, column C` position so a replay tool
/// can point at the offending spot in a multi-line document (the CLI's
/// exit-2 diagnostics depend on this format).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    parse_with_limits(input, &JsonLimits::default()).map_err(|e| e.to_string())
}

/// [`parse`] with explicit resource limits and a structured error —
/// the entry point for network-supplied bodies, where the caller needs
/// to distinguish "too big" / "too deep" from plain syntax errors and
/// must never risk a stack overflow.
pub fn parse_with_limits(input: &str, limits: &JsonLimits) -> Result<JsonValue, JsonError> {
    if input.len() > limits.max_bytes {
        return Err(JsonError {
            kind: JsonErrorKind::TooLarge,
            line: 1,
            column: 1,
            message: format!(
                "input of {} bytes exceeds the {}-byte limit",
                input.len(),
                limits.max_bytes
            ),
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser<'_> {
    /// 1-based (line, column) of the current position. Columns count
    /// bytes, which matches how editors address ASCII JSON documents.
    fn line_col(&self) -> (usize, usize) {
        let upto = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
        (line, col)
    }

    /// A [`JsonErrorKind::Syntax`] error at the current position.
    fn err(&self, msg: impl std::fmt::Display) -> JsonError {
        self.err_kind(JsonErrorKind::Syntax, msg)
    }

    /// An error of `kind` at the current position.
    fn err_kind(&self, kind: JsonErrorKind, msg: impl std::fmt::Display) -> JsonError {
        let (line, column) = self.line_col();
        JsonError {
            kind,
            line,
            column,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {:?}",
                c as char,
                self.bytes.get(self.pos).map(|&b| b as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(self.err(format!("unexpected {:?}", other.map(|&b| b as char)))),
        }
    }

    /// Bump the nesting depth on entering an array/object, failing with
    /// a structured [`JsonErrorKind::TooDeep`] instead of recursing into
    /// a stack overflow on hostile input.
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err_kind(
                JsonErrorKind::TooDeep,
                format!("nesting exceeds {} levels", self.max_depth),
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(map));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|&b| b as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|&b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| self.err(e))?,
                                16,
                            )
                            .map_err(|e| self.err(e))?;
                            // Surrogates map to the replacement character;
                            // profile/trace documents never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(
                                self.err(format!("bad escape {:?}", other.map(|&b| b as char)))
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| self.err(e))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            fractional = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| self.err(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), JsonValue::Float(2000.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn large_u64_counters_stay_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"x"},[]],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert!(v.get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn round_trips_own_profile_schema() {
        let mut snap = crate::Snapshot::default();
        snap.counters.insert("halo/bytes".into(), 12345);
        let mut stat = crate::snapshot::SpanStat::new();
        stat.record(100);
        snap.timers.insert("partition/coarsen".into(), stat);
        let doc = parse(&snap.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(crate::SCHEMA));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("halo/bytes")
                .unwrap()
                .as_u64(),
            Some(12345)
        );
        assert_eq!(
            doc.get("timers")
                .unwrap()
                .get("partition/coarsen")
                .unwrap()
                .get("total_ns")
                .unwrap()
                .as_u64(),
            Some(100)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The comma is missing on line 2, column 10 (the second key's
        // opening quote).
        let err = parse("{\n  \"a\": 1 \"b\": 2\n}").unwrap_err();
        assert!(err.contains("line 2, column 10"), "{err}");
        // Truncation points past the last byte of the last line.
        let err = parse("{\"a\":\n[1,").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Single-line documents report line 1.
        let err = parse("tru").unwrap_err();
        assert!(err.contains("line 1, column 1"), "{err}");
    }

    #[test]
    fn unicode_strings_survive() {
        assert_eq!(parse("\"héllo ✓\"").unwrap().as_str(), Some("héllo ✓"));
    }

    #[test]
    fn hostile_deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        // A megabyte of '[' would blow the stack in a depth-unlimited
        // recursive parser; with the default limits it must return a
        // TooDeep error (and `parse`'s String form must carry the same
        // line/column suffix as every other diagnostic).
        for doc in ["[".repeat(1 << 20), "{\"a\":".repeat(1 << 18)] {
            let err = parse_with_limits(&doc, &JsonLimits::default()).unwrap_err();
            assert_eq!(err.kind, JsonErrorKind::TooDeep);
            assert_eq!(err.line, 1);
            assert!(err.to_string().contains("at line 1, column"), "{err}");
            assert!(parse(&doc).is_err());
        }
    }

    #[test]
    fn documents_within_the_depth_limit_still_parse() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).is_ok());
        let at_limit = format!("{}1{}", "[".repeat(8), "]".repeat(8));
        let limits = JsonLimits {
            max_depth: 8,
            ..JsonLimits::default()
        };
        assert!(parse_with_limits(&at_limit, &limits).is_ok());
        let over = format!("{}1{}", "[".repeat(9), "]".repeat(9));
        assert_eq!(
            parse_with_limits(&over, &limits).unwrap_err().kind,
            JsonErrorKind::TooDeep
        );
    }

    #[test]
    fn oversized_input_is_rejected_up_front() {
        let limits = JsonLimits {
            max_bytes: 16,
            ..JsonLimits::default()
        };
        let err = parse_with_limits(&format!("\"{}\"", "x".repeat(64)), &limits).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooLarge);
        assert!(err.to_string().contains("exceeds the 16-byte limit"));
        // At the cap exactly is fine.
        assert!(parse_with_limits("\"xxxxxxxxxxxxxx\"", &limits).is_ok());
    }

    #[test]
    fn syntax_errors_keep_the_structured_kind_and_position() {
        let err = parse_with_limits("{\n  \"a\" 1}", &JsonLimits::default()).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::Syntax);
        assert_eq!(err.line, 2);
    }
}
