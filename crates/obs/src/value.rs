//! A minimal JSON reader (no serde: this crate must build with no
//! registry access).
//!
//! Parses a complete JSON document into a [`JsonValue`] tree. Built for
//! the profile comparator and trace schema checks, so it covers the
//! whole JSON grammar but optimises for nothing: strings, numbers
//! (integers kept exact as `u64`/`i64` where possible), booleans,
//! nulls, arrays, objects. Duplicate object keys keep the last value.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that is a non-negative integer fitting `u64` (exact).
    UInt(u64),
    /// A negative integer fitting `i64` (exact).
    Int(i64),
    /// Any other number (fractional or out of integer range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
///
/// Errors carry a 1-based `line L, column C` position so a replay tool
/// can point at the offending spot in a multi-line document (the CLI's
/// exit-2 diagnostics depend on this format).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    /// 1-based (line, column) of the current position. Columns count
    /// bytes, which matches how editors address ASCII JSON documents.
    fn line_col(&self) -> (usize, usize) {
        let upto = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
        (line, col)
    }

    /// `msg` decorated with the current `line L, column C` position.
    fn err(&self, msg: impl std::fmt::Display) -> String {
        let (line, col) = self.line_col();
        format!("{msg} at line {line}, column {col}")
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {:?}",
                c as char,
                self.bytes.get(self.pos).map(|&b| b as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(self.err(format!("unexpected {:?}", other.map(|&b| b as char)))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|&b| b as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|&b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates map to the replacement character;
                            // profile/trace documents never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(
                                self.err(format!("bad escape {:?}", other.map(|&b| b as char)))
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            fractional = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| self.err(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), JsonValue::Float(2000.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn large_u64_counters_stay_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"x"},[]],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert!(v.get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn round_trips_own_profile_schema() {
        let mut snap = crate::Snapshot::default();
        snap.counters.insert("halo/bytes".into(), 12345);
        let mut stat = crate::snapshot::SpanStat::new();
        stat.record(100);
        snap.timers.insert("partition/coarsen".into(), stat);
        let doc = parse(&snap.to_json()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(crate::SCHEMA));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("halo/bytes")
                .unwrap()
                .as_u64(),
            Some(12345)
        );
        assert_eq!(
            doc.get("timers")
                .unwrap()
                .get("partition/coarsen")
                .unwrap()
                .get("total_ns")
                .unwrap()
                .as_u64(),
            Some(100)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The comma is missing on line 2, column 10 (the second key's
        // opening quote).
        let err = parse("{\n  \"a\": 1 \"b\": 2\n}").unwrap_err();
        assert!(err.contains("line 2, column 10"), "{err}");
        // Truncation points past the last byte of the last line.
        let err = parse("{\"a\":\n[1,").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Single-line documents report line 1.
        let err = parse("tru").unwrap_err();
        assert!(err.contains("line 1, column 1"), "{err}");
    }

    #[test]
    fn unicode_strings_survive() {
        assert_eq!(parse("\"héllo ✓\"").unwrap().as_str(), Some("héllo ✓"));
    }
}
