//! Chrome Trace Event Format export for [`Tracer`] timelines.
//!
//! The output is the JSON Object Format of the Trace Event spec — an
//! object with a `traceEvents` array — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Each lane becomes
//! one thread row of a single process, named via `thread_name` metadata
//! events and ordered by `thread_sort_index`, so virtual ranks render
//! as adjacent timeline rows regardless of which OS thread simulated
//! them. Thread ids are assigned by *lane-name sort order*, not lane
//! registration order: registration order depends on thread scheduling,
//! while the sorted assignment makes Perfetto row order — and the
//! `tid` → lane mapping a replay tool reconstructs from the metadata —
//! stable across runs.
//!
//! Timestamps are microseconds (the spec's unit) with nanosecond
//! precision kept as three decimal places; formatting is integer-only,
//! so output is byte-stable for a given event stream.

use crate::events::EventKind;
use crate::json::escape;
use crate::Tracer;

/// Version tag written to every trace document (under `otherData`).
pub const TRACE_SCHEMA: &str = "cubesfc-trace-v1";

/// The process id all lanes share in the export.
const PID: u32 = 1;

/// Format nanoseconds as decimal microseconds (`12345` → `12.345`).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_args(out: &mut String, args: &[(String, u64)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), v));
    }
    out.push('}');
}

impl Tracer {
    /// Export every recorded event as a Chrome Trace Event Format JSON
    /// document. Always valid JSON, even with zero events or lanes.
    pub fn export_chrome(&self) -> String {
        let lanes = self.lane_names();
        let events = self.events();
        // tid = position in lane-name sort order; `tid_of` maps the
        // registration-order lane id each event carries to its tid.
        let mut order: Vec<usize> = (0..lanes.len()).collect();
        order.sort_by(|&a, &b| lanes[a].cmp(&lanes[b]));
        let mut tid_of = vec![0u32; lanes.len()];
        for (tid, &lane_id) in order.iter().enumerate() {
            tid_of[lane_id] = tid as u32;
        }
        let mut out = String::with_capacity(1024 + events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"droppedEvents\":");
        out.push_str(&self.dropped_events().to_string());
        out.push_str("},\"traceEvents\":[");

        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
        };

        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"args\":{{\"name\":\"cubesfc\"}}}}"
        ));
        for (tid, &lane_id) in order.iter().enumerate() {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(&lanes[lane_id])
            ));
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }

        for ev in &events {
            sep(&mut out);
            match ev.kind {
                EventKind::Begin => {
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":{PID},\"tid\":{},\"ts\":{}",
                        escape(&ev.name),
                        tid_of[ev.lane as usize],
                        ts_us(ev.ts_ns)
                    ));
                    push_args(&mut out, &ev.args);
                    out.push('}');
                }
                EventKind::End => {
                    out.push_str(&format!(
                        "{{\"ph\":\"E\",\"pid\":{PID},\"tid\":{},\"ts\":{}}}",
                        tid_of[ev.lane as usize],
                        ts_us(ev.ts_ns)
                    ));
                }
                EventKind::Instant => {
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{},\"ts\":{}",
                        escape(&ev.name),
                        tid_of[ev.lane as usize],
                        ts_us(ev.ts_ns)
                    ));
                    push_args(&mut out, &ev.args);
                    out.push('}');
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::parse;
    use crate::MockClock;
    use std::sync::Arc;

    #[test]
    fn ts_formats_nanoseconds_as_decimal_microseconds() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(12_345), "12.345");
        assert_eq!(ts_us(1_000_000), "1000.000");
    }

    #[test]
    fn empty_tracer_exports_valid_object() {
        let doc = parse(&Tracer::new().export_chrome()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj["otherData"].get("schema").unwrap().as_str(),
            Some(TRACE_SCHEMA)
        );
        assert_eq!(
            obj["otherData"].get("droppedEvents").unwrap().as_u64(),
            Some(0)
        );
        // Only the process_name metadata event.
        assert_eq!(obj["traceEvents"].as_arr().unwrap().len(), 1);
    }

    #[test]
    fn export_has_named_sorted_lanes_and_balanced_slices() {
        let clock = Arc::new(MockClock::new());
        let tracer = Tracer::with_clock(clock.clone());
        let r0 = tracer.lane("rank 0");
        let r1 = tracer.lane("rank 1");
        r0.begin_with("compute", &[("elements", 7)]);
        clock.advance(1500);
        r0.end();
        r1.instant("send", &[("bytes", 64)]);

        let json = tracer.export_chrome();
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 1"]);

        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .collect();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .count();
        assert_eq!(begins.len(), 1);
        assert_eq!(ends, 1);
        assert_eq!(begins[0].get("name").unwrap().as_str(), Some("compute"));
        assert_eq!(
            begins[0]
                .get("args")
                .unwrap()
                .get("elements")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(begins[0].get("ts").unwrap().as_f64(), Some(0.0));

        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .unwrap();
        assert_eq!(instant.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(instant.get("ts").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn tids_follow_lane_name_order_not_registration_order() {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new()));
        // Register out of name order, as racing rank threads would.
        let z = tracer.lane("rank 2");
        let a = tracer.lane("dss");
        let m = tracer.lane("rank 0");
        z.instant("on-z", &[]);
        a.instant("on-a", &[]);
        m.instant("on-m", &[]);

        let doc = parse(&tracer.export_chrome()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // thread_name metadata appears in sorted name order with tids
        // 0, 1, 2 matching sort_index.
        let named: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .map(|e| {
                (
                    e.get("tid").unwrap().as_u64().unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(named, vec![(0, "dss"), (1, "rank 0"), (2, "rank 2")]);
        // Events point at the sorted tids.
        let tid_for = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap()
                .get("tid")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert_eq!(tid_for("on-a"), 0);
        assert_eq!(tid_for("on-m"), 1);
        assert_eq!(tid_for("on-z"), 2);
    }

    #[test]
    fn export_reports_dropped_events() {
        let tracer = Tracer::with_clock_and_capacity(Arc::new(MockClock::new()), 2);
        let lane = tracer.lane("x");
        for _ in 0..5 {
            lane.instant("e", &[]);
        }
        let doc = parse(&tracer.export_chrome()).unwrap();
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("droppedEvents")
                .unwrap()
                .as_u64(),
            Some(3)
        );
    }

    #[test]
    fn names_are_escaped() {
        let tracer = Tracer::new();
        let lane = tracer.lane("rank \"0\"");
        lane.instant("a\nb", &[]);
        let json = tracer.export_chrome();
        parse(&json).unwrap();
        assert!(json.contains("rank \\\"0\\\""));
        assert!(json.contains("a\\nb"));
    }
}
