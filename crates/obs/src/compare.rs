//! Profile-regression comparator: diff two `cubesfc-profile-v1`
//! snapshot documents against configurable thresholds.
//!
//! This is the engine behind `cubesfc compare <old.json> <new.json>`
//! and the `perf_compare` bench binary: span wall-times and counters
//! from the *new* snapshot are compared entry-by-entry against the
//! *old* (baseline) snapshot. A span whose total time grew by more than
//! the threshold — and is large enough to be above timing noise — is a
//! **regression**; callers exit nonzero when any exist (unless running
//! report-only in CI, where machine-to-machine variance makes absolute
//! times advisory).

use crate::value::{parse, JsonValue};
use std::collections::BTreeMap;

/// Tunable comparison thresholds.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Relative growth (percent) beyond which an entry regresses.
    pub threshold_pct: f64,
    /// Spans where *both* sides are below this total are ignored:
    /// timing noise dominates sub-millisecond phases.
    pub min_total_ns: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            threshold_pct: 25.0,
            min_total_ns: 1_000_000,
        }
    }
}

/// How one entry moved between the two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within threshold (or below the noise floor).
    Ok,
    /// Grew beyond the threshold.
    Regressed,
    /// Shrank beyond the threshold.
    Improved,
    /// Present only in the new snapshot.
    Added,
    /// Present only in the old snapshot.
    Removed,
}

impl DeltaStatus {
    fn label(self) -> &'static str {
        match self {
            DeltaStatus::Ok => "ok",
            DeltaStatus::Regressed => "REGRESSED",
            DeltaStatus::Improved => "improved",
            DeltaStatus::Added => "added",
            DeltaStatus::Removed => "removed",
        }
    }
}

/// One compared entry (a span's total time or a counter's value).
#[derive(Clone, Debug)]
pub struct Delta {
    /// Span path or counter name.
    pub name: String,
    /// Baseline value (ns for spans, raw for counters); 0 when added.
    pub old: u64,
    /// New value; 0 when removed.
    pub new: u64,
    /// Classification against the thresholds.
    pub status: DeltaStatus,
    /// Relative change in percent (`+50.0` = new is 1.5× old);
    /// meaningless for added/removed entries.
    pub change_pct: f64,
}

/// The full diff of two profile snapshots.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Per-span wall-time deltas, in path order.
    pub spans: Vec<Delta>,
    /// Per-counter deltas, in name order.
    pub counters: Vec<Delta>,
    /// The thresholds the classification used.
    pub config: CompareConfig,
}

impl CompareReport {
    /// Number of regressed entries (spans + counters).
    pub fn regressions(&self) -> usize {
        self.spans
            .iter()
            .chain(&self.counters)
            .filter(|d| d.status == DeltaStatus::Regressed)
            .count()
    }

    /// Render a human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile comparison (threshold {:.0}%, noise floor {:.1} ms)\n",
            self.config.threshold_pct,
            self.config.min_total_ns as f64 / 1e6
        ));
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "\n{:<34} {:>12} {:>12} {:>9}  {}\n",
                "span", "old(ms)", "new(ms)", "change", "status"
            ));
            for d in &self.spans {
                out.push_str(&format!(
                    "{:<34} {:>12.3} {:>12.3} {:>8.1}%  {}\n",
                    d.name,
                    d.old as f64 / 1e6,
                    d.new as f64 / 1e6,
                    d.change_pct,
                    d.status.label()
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!(
                "\n{:<34} {:>14} {:>14} {:>9}  {}\n",
                "counter", "old", "new", "change", "status"
            ));
            for d in &self.counters {
                out.push_str(&format!(
                    "{:<34} {:>14} {:>14} {:>8.1}%  {}\n",
                    d.name,
                    d.old,
                    d.new,
                    d.change_pct,
                    d.status.label()
                ));
            }
        }
        let n = self.regressions();
        if n == 0 {
            out.push_str("\nno regressions\n");
        } else {
            out.push_str(&format!("\n{n} regression(s)\n"));
        }
        out
    }
}

fn change_pct(old: u64, new: u64) -> f64 {
    if old == 0 {
        return 0.0;
    }
    (new as f64 / old as f64 - 1.0) * 100.0
}

fn classify(old: u64, new: u64, cfg: &CompareConfig, noise_floor: u64) -> (DeltaStatus, f64) {
    let pct = change_pct(old, new);
    if old.max(new) < noise_floor {
        return (DeltaStatus::Ok, pct);
    }
    if pct > cfg.threshold_pct {
        (DeltaStatus::Regressed, pct)
    } else if pct < -cfg.threshold_pct {
        (DeltaStatus::Improved, pct)
    } else {
        (DeltaStatus::Ok, pct)
    }
}

/// Merge old/new maps into deltas over the union of their keys.
fn diff_maps(
    old: &BTreeMap<String, u64>,
    new: &BTreeMap<String, u64>,
    cfg: &CompareConfig,
    noise_floor: u64,
) -> Vec<Delta> {
    let mut out = Vec::new();
    for (name, &ov) in old {
        match new.get(name) {
            Some(&nv) => {
                let (status, pct) = classify(ov, nv, cfg, noise_floor);
                out.push(Delta {
                    name: name.clone(),
                    old: ov,
                    new: nv,
                    status,
                    change_pct: pct,
                });
            }
            None => out.push(Delta {
                name: name.clone(),
                old: ov,
                new: 0,
                status: DeltaStatus::Removed,
                change_pct: -100.0,
            }),
        }
    }
    for (name, &nv) in new {
        if !old.contains_key(name) {
            out.push(Delta {
                name: name.clone(),
                old: 0,
                new: nv,
                status: DeltaStatus::Added,
                change_pct: 0.0,
            });
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Named `u64` series extracted from a snapshot (span totals, counters).
type Series = BTreeMap<String, u64>;

/// Extract `{name: total_ns}` spans and `{name: value}` counters from a
/// parsed `cubesfc-profile-v1` document.
fn extract(doc: &JsonValue) -> Result<(Series, Series), String> {
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == crate::SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "unsupported schema {s:?} (want {:?})",
                crate::SCHEMA
            ))
        }
        None => return Err("missing \"schema\" key — not a profile document".into()),
    }
    let mut spans = BTreeMap::new();
    if let Some(timers) = doc.get("timers").and_then(|t| t.as_obj()) {
        for (path, stat) in timers {
            let total = stat
                .get("total_ns")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("timer {path:?} has no total_ns"))?;
            spans.insert(path.clone(), total);
        }
    }
    let mut counters = BTreeMap::new();
    if let Some(cs) = doc.get("counters").and_then(|c| c.as_obj()) {
        for (name, v) in cs {
            counters.insert(
                name.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("counter {name:?} is not an unsigned integer"))?,
            );
        }
    }
    Ok((spans, counters))
}

/// Compare two `cubesfc-profile-v1` JSON documents.
///
/// Errors on malformed JSON or wrong schema. Counters are compared with
/// no noise floor (they are deterministic byte/message counts); spans
/// use [`CompareConfig::min_total_ns`].
pub fn compare_profiles(
    old_json: &str,
    new_json: &str,
    cfg: &CompareConfig,
) -> Result<CompareReport, String> {
    let old = parse(old_json).map_err(|e| format!("old snapshot: {e}"))?;
    let new = parse(new_json).map_err(|e| format!("new snapshot: {e}"))?;
    let (old_spans, old_counters) = extract(&old).map_err(|e| format!("old snapshot: {e}"))?;
    let (new_spans, new_counters) = extract(&new).map_err(|e| format!("new snapshot: {e}"))?;
    Ok(CompareReport {
        spans: diff_maps(&old_spans, &new_spans, cfg, cfg.min_total_ns),
        counters: diff_maps(&old_counters, &new_counters, cfg, 0),
        config: *cfg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(spans: &[(&str, u64)], counters: &[(&str, u64)]) -> String {
        let mut snap = crate::Snapshot::default();
        for (name, total) in spans {
            let mut stat = crate::snapshot::SpanStat::new();
            stat.record(*total);
            snap.timers.insert(name.to_string(), stat);
        }
        for (name, v) in counters {
            snap.counters.insert(name.to_string(), *v);
        }
        snap.to_json()
    }

    #[test]
    fn identical_snapshots_have_no_regressions() {
        let doc = profile(&[("partition", 50_000_000)], &[("halo/bytes", 4096)]);
        let report = compare_profiles(&doc, &doc, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert!(report.spans.iter().all(|d| d.status == DeltaStatus::Ok));
        assert!(report.render().contains("no regressions"));
    }

    #[test]
    fn over_threshold_span_growth_is_a_regression() {
        let old = profile(&[("partition", 10_000_000)], &[]);
        let new = profile(&[("partition", 30_000_000)], &[]);
        let report = compare_profiles(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.spans[0].status, DeltaStatus::Regressed);
        assert!((report.spans[0].change_pct - 200.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
        // The reverse direction is an improvement, not a regression.
        let back = compare_profiles(&new, &old, &CompareConfig::default()).unwrap();
        assert_eq!(back.regressions(), 0);
        assert_eq!(back.spans[0].status, DeltaStatus::Improved);
    }

    #[test]
    fn sub_noise_floor_spans_are_ignored() {
        let old = profile(&[("tiny", 1_000)], &[]);
        let new = profile(&[("tiny", 900_000)], &[]); // 900× but under 1ms
        let report = compare_profiles(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        // With the floor lowered the same delta regresses.
        let cfg = CompareConfig {
            min_total_ns: 0,
            ..CompareConfig::default()
        };
        assert_eq!(compare_profiles(&old, &new, &cfg).unwrap().regressions(), 1);
    }

    #[test]
    fn counters_regress_with_no_noise_floor() {
        let old = profile(&[], &[("halo/bytes_sent", 1000)]);
        let new = profile(&[], &[("halo/bytes_sent", 1500)]);
        let report = compare_profiles(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.counters[0].status, DeltaStatus::Regressed);
    }

    #[test]
    fn added_and_removed_entries_are_informational() {
        let old = profile(&[("gone", 5_000_000)], &[]);
        let new = profile(&[("fresh", 5_000_000)], &[]);
        let report = compare_profiles(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        let by_name: BTreeMap<_, _> = report
            .spans
            .iter()
            .map(|d| (d.name.as_str(), d.status))
            .collect();
        assert_eq!(by_name["gone"], DeltaStatus::Removed);
        assert_eq!(by_name["fresh"], DeltaStatus::Added);
    }

    #[test]
    fn wrong_schema_and_bad_json_error_out() {
        let good = profile(&[], &[]);
        assert!(compare_profiles("{not json", &good, &CompareConfig::default()).is_err());
        let bad_schema = good.replace("cubesfc-profile-v1", "cubesfc-profile-v9");
        let err = compare_profiles(&good, &bad_schema, &CompareConfig::default()).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(
            compare_profiles("{\"timers\":{}}", &good, &CompareConfig::default())
                .unwrap_err()
                .contains("missing"),
        );
    }

    #[test]
    fn custom_threshold_changes_classification() {
        let old = profile(&[("p", 10_000_000)], &[]);
        let new = profile(&[("p", 11_500_000)], &[]); // +15%
        let strict = CompareConfig {
            threshold_pct: 10.0,
            ..CompareConfig::default()
        };
        assert_eq!(
            compare_profiles(&old, &new, &CompareConfig::default())
                .unwrap()
                .regressions(),
            0
        );
        assert_eq!(
            compare_profiles(&old, &new, &strict).unwrap().regressions(),
            1
        );
    }
}
