//! Time sources for span measurement.
//!
//! Production code uses [`MonotonicClock`] (backed by `std::time::Instant`);
//! tests inject [`MockClock`] so span durations are exact and no test ever
//! sleeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond counter. Implementations must be thread-safe;
/// only differences between readings are meaningful.
pub trait Clock: Send + Sync {
    fn now_ns(&self) -> u64;
}

/// Wall-clock monotonic time, measured from the clock's creation.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturating: a u64 of nanoseconds covers ~584 years of uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually advanced clock for deterministic tests.
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    pub fn new() -> MockClock {
        MockClock {
            now: AtomicU64::new(0),
        }
    }

    /// Advance the clock by `delta_ns` nanoseconds.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Set the absolute reading (must not move backwards in real usage,
    /// but the clock does not enforce it).
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::SeqCst);
    }
}

impl Default for MockClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_advances_exactly() {
        let c = MockClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        c.advance(50);
        assert_eq!(c.now_ns(), 300);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }
}
