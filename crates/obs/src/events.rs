//! Event-timeline tracing: bounded per-thread event ring buffers plus a
//! *lane* abstraction so logical actors (virtual ranks, the DSS
//! exchange) get their own timeline rows independent of the OS thread
//! that simulated them.
//!
//! A [`Tracer`] mirrors the [`crate::Registry`] design: every recording
//! thread gets a private shard (one mutex, uncontended in steady state)
//! holding a bounded `Vec` of events. When a shard is full, new events
//! are dropped and counted exactly — the buffer never reallocates past
//! its capacity, so a runaway trace cannot exhaust memory. Shards are
//! merged and time-sorted only at export time
//! ([`Tracer::export_chrome`], in `chrome.rs`).
//!
//! Lanes are registered by name ([`Tracer::lane`]); a [`Lane`] handle is
//! `Clone + Send`, so one logical lane (e.g. `"dss"`) can receive
//! instant events from many threads while each virtual rank's own lane
//! receives its begin/end slices from exactly the thread that ran it —
//! which keeps begin/end nesting well-formed per lane.

use crate::clock::Clock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An event-timeline recorder. Cheap to clone (`Arc` inner); clones
/// share the same lanes and event buffers. Explicit instances always
/// record — the *global* tracer (see [`crate::trace_lane`]) is gated
/// behind the same relaxed-atomic fast path as the metrics registry.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

struct TracerInner {
    id: u64,
    clock: Arc<dyn Clock>,
    capacity: usize,
    /// Lane names; the index is the lane id (and the export `tid`).
    lanes: Mutex<Vec<String>>,
    /// Every event shard ever handed to a thread; Arcs keep data alive
    /// after the owning thread exits.
    shards: Mutex<Vec<Arc<Mutex<EventShard>>>>,
}

/// Default per-thread event capacity (events, not bytes).
pub(crate) const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// What kind of timeline mark an event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a slice on the lane (Chrome `"B"`).
    Begin,
    /// Closes the most recent open slice on the lane (Chrome `"E"`).
    End,
    /// A zero-duration mark (Chrome `"i"`).
    Instant,
}

/// One recorded timeline event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Which lane (timeline row) the event belongs to.
    pub lane: u32,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Slice or mark name (empty for [`EventKind::End`]).
    pub name: String,
    /// Timestamp from the tracer's clock.
    pub ts_ns: u64,
    /// Numeric annotations (e.g. `("elements", 12)`, `("bytes", 4096)`).
    pub args: Vec<(String, u64)>,
}

/// One thread's bounded slice of a tracer's event stream.
pub(crate) struct EventShard {
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) capacity: usize,
    /// Events not recorded because the shard was full. Exact.
    pub(crate) dropped: u64,
}

impl EventShard {
    fn new(capacity: usize) -> EventShard {
        EventShard {
            // Grows on demand up to `capacity`; traces are usually far
            // smaller than the cap, so don't pre-reserve megabytes.
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }
}

thread_local! {
    static TRACE_TLS: RefCell<TraceTls> = RefCell::new(TraceTls::default());
}

#[derive(Default)]
struct TraceTls {
    /// tracer id -> this thread's event shard of that tracer.
    shards: HashMap<u64, Arc<Mutex<EventShard>>>,
    /// tracer id -> this OS thread's implicit lane (for [`crate::span`]
    /// events and instants not tied to a logical actor).
    thread_lane: HashMap<u64, u32>,
}

impl Tracer {
    /// New tracer using real monotonic time and the default per-thread
    /// event capacity.
    pub fn new() -> Tracer {
        Tracer::with_clock(Arc::new(crate::MonotonicClock::new()))
    }

    /// New tracer with an injected time source (tests: [`crate::MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Tracer {
        Tracer::with_clock_and_capacity(clock, DEFAULT_EVENT_CAPACITY)
    }

    /// New tracer with an explicit per-thread event capacity.
    pub fn with_clock_and_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                id: crate::next_registry_id(),
                clock,
                capacity,
                lanes: Mutex::new(Vec::new()),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The tracer's current time in nanoseconds, from its injected
    /// clock. Lets callers back-fill slices with [`Lane::slice_at`]
    /// using timestamps consistent with live-recorded events.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Register (or look up) a lane by name. Lane ids are assigned in
    /// registration order and name each timeline row in the export.
    pub fn lane(&self, name: &str) -> Lane {
        let mut lanes = self.inner.lanes.lock().expect("obs lane list poisoned");
        let id = match lanes.iter().position(|l| l == name) {
            Some(i) => i as u32,
            None => {
                lanes.push(name.to_string());
                (lanes.len() - 1) as u32
            }
        };
        Lane {
            tracer: Some(self.clone()),
            id,
        }
    }

    /// The calling OS thread's implicit lane, named after the thread
    /// (or `thread-<id>` for unnamed threads). Created on first use.
    pub fn thread_lane(&self) -> Lane {
        let cached = TRACE_TLS
            .try_with(|tls| tls.borrow().thread_lane.get(&self.inner.id).copied())
            .ok()
            .flatten();
        if let Some(id) = cached {
            return Lane {
                tracer: Some(self.clone()),
                id,
            };
        }
        let thread = std::thread::current();
        let name = match thread.name() {
            Some(n) => n.to_string(),
            None => format!("thread-{:?}", thread.id()),
        };
        let lane = self.lane(&name);
        let _ = TRACE_TLS.try_with(|tls| {
            tls.borrow_mut().thread_lane.insert(self.inner.id, lane.id);
        });
        lane
    }

    /// Snapshot of the registered lane names, in id order.
    pub fn lane_names(&self) -> Vec<String> {
        self.inner
            .lanes
            .lock()
            .expect("obs lane list poisoned")
            .clone()
    }

    /// Run `f` on the calling thread's event shard, creating and
    /// registering it on first use. `None` only during thread teardown.
    fn with_shard<R>(&self, f: impl FnOnce(&mut EventShard) -> R) -> Option<R> {
        let shard = TRACE_TLS
            .try_with(|tls| {
                let mut tls = tls.borrow_mut();
                tls.shards
                    .entry(self.inner.id)
                    .or_insert_with(|| {
                        let shard = Arc::new(Mutex::new(EventShard::new(self.inner.capacity)));
                        self.inner
                            .shards
                            .lock()
                            .expect("obs event shard list poisoned")
                            .push(Arc::clone(&shard));
                        shard
                    })
                    .clone()
            })
            .ok()?;
        let mut data = shard.lock().expect("obs event shard poisoned");
        Some(f(&mut data))
    }

    fn record(&self, lane: u32, kind: EventKind, name: &str, args: &[(&str, u64)]) {
        let ts_ns = self.inner.clock.now_ns();
        self.record_at(lane, kind, name, ts_ns, args);
    }

    fn record_at(&self, lane: u32, kind: EventKind, name: &str, ts_ns: u64, args: &[(&str, u64)]) {
        self.with_shard(|s| {
            // Build the owned event only after the capacity check so a
            // saturated buffer costs no allocation per dropped event.
            if s.events.len() >= s.capacity {
                s.dropped += 1;
                return;
            }
            s.events.push(TraceEvent {
                lane,
                kind,
                name: name.to_string(),
                ts_ns,
                args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            });
        });
    }

    /// All recorded events, merged across threads and stably sorted by
    /// timestamp (per-lane order is preserved: each lane's begin/end
    /// stream comes from one thread recording in time order).
    pub fn events(&self) -> Vec<TraceEvent> {
        let shards = self
            .inner
            .shards
            .lock()
            .expect("obs event shard list poisoned");
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in shards.iter() {
            let data = shard.lock().expect("obs event shard poisoned");
            all.extend(data.events.iter().cloned());
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Total recorded events across all threads.
    pub fn event_count(&self) -> usize {
        let shards = self
            .inner
            .shards
            .lock()
            .expect("obs event shard list poisoned");
        shards
            .iter()
            .map(|s| s.lock().expect("obs event shard poisoned").events.len())
            .sum()
    }

    /// Exact count of events dropped because a thread's buffer was full.
    pub fn dropped_events(&self) -> u64 {
        let shards = self
            .inner
            .shards
            .lock()
            .expect("obs event shard list poisoned");
        shards
            .iter()
            .map(|s| s.lock().expect("obs event shard poisoned").dropped)
            .sum()
    }

    /// Clear all recorded events and the dropped counter (lanes and
    /// shards stay registered).
    pub fn reset(&self) {
        let shards = self
            .inner
            .shards
            .lock()
            .expect("obs event shard list poisoned");
        for shard in shards.iter() {
            let mut data = shard.lock().expect("obs event shard poisoned");
            data.events.clear();
            data.dropped = 0;
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// A handle to one timeline row. Inert handles (from [`Lane::inert`] or
/// [`crate::trace_lane`] while tracing is off) record nothing.
///
/// Clone freely: clones address the same lane. A lane that receives
/// begin/end slices must receive them from a single thread at a time
/// (each virtual rank owns its lane); instant events may come from
/// anywhere.
#[derive(Clone)]
pub struct Lane {
    tracer: Option<Tracer>,
    id: u32,
}

impl Lane {
    /// A lane that records nothing.
    pub fn inert() -> Lane {
        Lane {
            tracer: None,
            id: 0,
        }
    }

    /// Does this handle record anything?
    pub fn is_active(&self) -> bool {
        self.tracer.is_some()
    }

    /// Open a slice on the lane.
    pub fn begin(&self, name: &str) {
        self.begin_with(name, &[]);
    }

    /// Open a slice annotated with numeric args (shown in the trace
    /// viewer's detail pane).
    pub fn begin_with(&self, name: &str, args: &[(&str, u64)]) {
        if let Some(t) = &self.tracer {
            t.record(self.id, EventKind::Begin, name, args);
        }
    }

    /// Close the most recently opened slice on the lane.
    pub fn end(&self) {
        if let Some(t) = &self.tracer {
            t.record(self.id, EventKind::End, "", &[]);
        }
    }

    /// Record a zero-duration mark.
    pub fn instant(&self, name: &str, args: &[(&str, u64)]) {
        if let Some(t) = &self.tracer {
            t.record(self.id, EventKind::Instant, name, args);
        }
    }

    /// Record a complete slice with explicit timestamps, bypassing the
    /// tracer's clock. This is how *modelled* timelines are written: a
    /// simulator that knows each virtual rank's compute/wait seconds can
    /// lay them out on a deterministic synthetic time axis, so the trace
    /// (and everything replayed from it) is byte-identical at a fixed
    /// seed. `end_ns` must not precede `start_ns`.
    pub fn slice_at(&self, name: &str, start_ns: u64, end_ns: u64, args: &[(&str, u64)]) {
        debug_assert!(end_ns >= start_ns, "slice_at: end before start");
        if let Some(t) = &self.tracer {
            t.record_at(self.id, EventKind::Begin, name, start_ns, args);
            t.record_at(self.id, EventKind::End, "", end_ns.max(start_ns), &[]);
        }
    }

    /// Open a slice at an explicit timestamp without closing it —
    /// deliberately unbalanced, for modelling streams whose tail was
    /// truncated away.
    pub fn begin_at(&self, name: &str, start_ns: u64, args: &[(&str, u64)]) {
        if let Some(t) = &self.tracer {
            t.record_at(self.id, EventKind::Begin, name, start_ns, args);
        }
    }

    /// Record a zero-duration mark at an explicit timestamp.
    pub fn instant_at(&self, name: &str, ts_ns: u64, args: &[(&str, u64)]) {
        if let Some(t) = &self.tracer {
            t.record_at(self.id, EventKind::Instant, name, ts_ns, args);
        }
    }

    /// RAII slice: begins now, ends when the guard drops.
    pub fn span(&self, name: &str) -> LaneSpan {
        self.span_with(name, &[])
    }

    /// RAII slice with numeric annotations.
    pub fn span_with(&self, name: &str, args: &[(&str, u64)]) -> LaneSpan {
        self.begin_with(name, args);
        LaneSpan { lane: self.clone() }
    }
}

/// RAII guard returned by [`Lane::span`]; closes the slice on drop.
pub struct LaneSpan {
    lane: Lane,
}

impl Drop for LaneSpan {
    fn drop(&mut self) {
        self.lane.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MockClock;

    #[test]
    fn lane_slices_record_in_order_with_args() {
        let clock = Arc::new(MockClock::new());
        let tracer = Tracer::with_clock(clock.clone());
        let lane = tracer.lane("rank 0");
        lane.begin_with("compute", &[("elements", 12)]);
        clock.advance(100);
        lane.end();
        clock.advance(5);
        lane.instant("send", &[("bytes", 4096)]);
        let evs = tracer.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[0].name, "compute");
        assert_eq!(evs[0].args, vec![("elements".to_string(), 12)]);
        assert_eq!(evs[1].kind, EventKind::End);
        assert_eq!(evs[1].ts_ns, 100);
        assert_eq!(evs[2].kind, EventKind::Instant);
        assert_eq!(evs[2].ts_ns, 105);
    }

    #[test]
    fn explicit_timestamp_slices_ignore_the_clock() {
        let clock = Arc::new(MockClock::new());
        clock.advance(1_000_000);
        let tracer = Tracer::with_clock(clock);
        let lane = tracer.lane("rank 0");
        lane.slice_at("compute", 10, 25, &[("elements", 4)]);
        lane.slice_at("wait", 25, 25, &[]); // zero-duration is legal
        lane.instant_at("mark", 30, &[]);
        let evs = tracer.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(
            evs.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![10, 25, 25, 25, 30]
        );
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[1].kind, EventKind::End);
        // The stable sort keeps the zero-duration begin/end ordered.
        assert_eq!(evs[2].kind, EventKind::Begin);
        assert_eq!(evs[2].name, "wait");
        assert_eq!(evs[3].kind, EventKind::End);
        assert_eq!(evs[4].kind, EventKind::Instant);
    }

    #[test]
    fn lanes_are_deduplicated_by_name() {
        let tracer = Tracer::new();
        let a = tracer.lane("dss");
        let b = tracer.lane("dss");
        let c = tracer.lane("rank 1");
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
        assert_eq!(tracer.lane_names(), vec!["dss", "rank 1"]);
    }

    #[test]
    fn full_buffer_drops_exactly_and_never_grows() {
        let tracer = Tracer::with_clock_and_capacity(Arc::new(MockClock::new()), 4);
        let lane = tracer.lane("rank 0");
        for i in 0..9 {
            lane.instant("tick", &[("i", i)]);
        }
        assert_eq!(tracer.event_count(), 4);
        assert_eq!(tracer.dropped_events(), 5);
        // The survivors are the oldest events (a valid trace prefix).
        let evs = tracer.events();
        assert_eq!(evs[0].args[0].1, 0);
        assert_eq!(evs[3].args[0].1, 3);
    }

    #[test]
    fn reset_clears_events_and_dropped_counter() {
        let tracer = Tracer::with_clock_and_capacity(Arc::new(MockClock::new()), 2);
        let lane = tracer.lane("x");
        for _ in 0..5 {
            lane.instant("e", &[]);
        }
        assert_eq!(tracer.dropped_events(), 3);
        tracer.reset();
        assert_eq!(tracer.event_count(), 0);
        assert_eq!(tracer.dropped_events(), 0);
        lane.instant("after", &[]);
        assert_eq!(tracer.event_count(), 1);
    }

    #[test]
    fn cross_thread_events_merge_time_sorted() {
        let clock = Arc::new(MockClock::new());
        let tracer = Tracer::with_clock(clock.clone());
        let lane = tracer.lane("dss");
        clock.advance(10);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let lane = lane.clone();
                s.spawn(move || lane.instant("exchange", &[("bytes", 64)]));
            }
        });
        clock.advance(10);
        lane.instant("late", &[]);
        let evs = tracer.events();
        assert_eq!(evs.len(), 4);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(evs[3].name, "late");
    }

    #[test]
    fn inert_lane_records_nothing() {
        let lane = Lane::inert();
        lane.begin("x");
        lane.instant("y", &[("a", 1)]);
        lane.end();
        let _span = lane.span("z");
        assert!(!lane.is_active());
    }

    #[test]
    fn thread_lane_is_stable_per_thread() {
        let tracer = Tracer::new();
        let a = tracer.thread_lane();
        let b = tracer.thread_lane();
        assert_eq!(a.id, b.id);
        let other = std::thread::spawn({
            let tracer = tracer.clone();
            move || tracer.thread_lane().id
        })
        .join()
        .unwrap();
        assert_ne!(a.id, other);
    }
}
