//! Prometheus text-format exposition for [`Snapshot`].
//!
//! The mapping from registry metrics to Prometheus families:
//!
//! * **counters** → `counter` samples — except names containing
//!   `/gauge/`, the workspace convention for point-in-time values
//!   injected into a snapshot at scrape time, which are typed `gauge`;
//! * **span timers** → a `summary` family named `<name>_ns` carrying
//!   only `_sum` (total nanoseconds) and `_count`;
//! * **log2 histograms** → a `histogram` family with cumulative
//!   `_bucket{le="<hi>"}` lines over the occupied buckets (a log2
//!   bucket `[lo, hi]` is closed over the integers, so `hi` is the
//!   bucket's inclusive — hence `le` — upper bound), a final `+Inf`
//!   bucket, then `_sum` and `_count`.
//!
//! Registry names are slash-separated paths, which the Prometheus name
//! charset `[a-zA-Z_:][a-zA-Z0-9_:]*` does not admit; [`prom_name`]
//! substitutes `_` for every invalid character and prefixes `_` when
//! the result would start with a digit. Whenever sanitization changed
//! the name, the original is preserved on every sample as a `path`
//! label, so two registry names that collide after sanitization stay
//! distinguishable. Output follows `BTreeMap` order and is byte-stable.

use crate::snapshot::Snapshot;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Sanitize a registry metric name into the Prometheus name charset.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One sample line: `name[_suffix]{labels} value`.
fn push_sample(out: &mut String, family: &str, suffix: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(family);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// `# TYPE` line, emitted once per family (two registry names can
/// sanitize to the same family; the `path` label keeps their samples
/// apart, but the family may only be declared once).
fn push_type(out: &mut String, typed: &mut HashSet<String>, family: &str, kind: &str) {
    if typed.insert(family.to_string()) {
        let _ = writeln!(out, "# TYPE {family} {kind}");
    }
}

impl Snapshot {
    /// Serialize the snapshot in the Prometheus text exposition format
    /// (version 0.0.4). Deterministic: `BTreeMap` order throughout.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut typed: HashSet<String> = HashSet::new();

        for (name, value) in &self.counters {
            let family = prom_name(name);
            let kind = if name.contains("/gauge/") {
                "gauge"
            } else {
                "counter"
            };
            push_type(&mut out, &mut typed, &family, kind);
            let labels: Vec<(&str, &str)> = if family == *name {
                Vec::new()
            } else {
                vec![("path", name.as_str())]
            };
            push_sample(&mut out, &family, "", &labels, *value);
        }

        for (name, stat) in &self.timers {
            let base = prom_name(name);
            let family = format!("{base}_ns");
            push_type(&mut out, &mut typed, &family, "summary");
            let labels: Vec<(&str, &str)> = if base == *name {
                Vec::new()
            } else {
                vec![("path", name.as_str())]
            };
            push_sample(&mut out, &family, "_sum", &labels, stat.total_ns);
            push_sample(&mut out, &family, "_count", &labels, stat.count);
        }

        for (name, h) in &self.histograms {
            let family = prom_name(name);
            push_type(&mut out, &mut typed, &family, "histogram");
            let path: Option<(&str, &str)> = if family == *name {
                None
            } else {
                Some(("path", name.as_str()))
            };
            let mut cum = 0u64;
            for b in &h.buckets {
                cum += b.count;
                let le = b.hi.to_string();
                let mut labels: Vec<(&str, &str)> = Vec::new();
                if let Some(p) = path {
                    labels.push(p);
                }
                labels.push(("le", le.as_str()));
                push_sample(&mut out, &family, "_bucket", &labels, cum);
            }
            let mut labels: Vec<(&str, &str)> = Vec::new();
            if let Some(p) = path {
                labels.push(p);
            }
            labels.push(("le", "+Inf"));
            push_sample(&mut out, &family, "_bucket", &labels, h.count);
            let plain: Vec<(&str, &str)> = path.into_iter().collect();
            push_sample(&mut out, &family, "_sum", &plain, h.sum);
            push_sample(&mut out, &family, "_count", &plain, h.count);
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use crate::snapshot::{Bucket, HistogramSnapshot, Snapshot, SpanStat};
    use crate::Registry;

    #[test]
    fn golden_exposition_with_hostile_names() {
        let mut snap = Snapshot::default();
        snap.counters.insert("9lives".to_string(), 9);
        snap.counters.insert("say \"hi\"\nok".to_string(), 5);
        snap.counters
            .insert("serve/gauge/queue_depth".to_string(), 3);
        snap.counters.insert("serve/http 429".to_string(), 2);
        snap.counters.insert("up".to_string(), 1);
        snap.counters.insert("vitesse média".to_string(), 7);
        let mut stat = SpanStat::new();
        stat.record(100);
        stat.record(50);
        snap.timers.insert("serve/partition".to_string(), stat);
        snap.histograms.insert(
            "serve/latency/partition_us".to_string(),
            HistogramSnapshot {
                count: 4,
                sum: 100,
                buckets: vec![
                    Bucket {
                        lo: 8,
                        hi: 15,
                        count: 3,
                    },
                    Bucket {
                        lo: 32,
                        hi: 63,
                        count: 1,
                    },
                ],
            },
        );

        let expected = "\
# TYPE _9lives counter
_9lives{path=\"9lives\"} 9
# TYPE say__hi__ok counter
say__hi__ok{path=\"say \\\"hi\\\"\\nok\"} 5
# TYPE serve_gauge_queue_depth gauge
serve_gauge_queue_depth{path=\"serve/gauge/queue_depth\"} 3
# TYPE serve_http_429 counter
serve_http_429{path=\"serve/http 429\"} 2
# TYPE up counter
up 1
# TYPE vitesse_m_dia counter
vitesse_m_dia{path=\"vitesse média\"} 7
# TYPE serve_partition_ns summary
serve_partition_ns_sum{path=\"serve/partition\"} 150
serve_partition_ns_count{path=\"serve/partition\"} 2
# TYPE serve_latency_partition_us histogram
serve_latency_partition_us_bucket{path=\"serve/latency/partition_us\",le=\"15\"} 3
serve_latency_partition_us_bucket{path=\"serve/latency/partition_us\",le=\"63\"} 4
serve_latency_partition_us_bucket{path=\"serve/latency/partition_us\",le=\"+Inf\"} 4
serve_latency_partition_us_sum{path=\"serve/latency/partition_us\"} 100
serve_latency_partition_us_count{path=\"serve/latency/partition_us\"} 4
";
        assert_eq!(snap.to_prometheus(), expected);
        // Byte-stable across calls.
        assert_eq!(snap.to_prometheus(), snap.to_prometheus());
    }

    #[test]
    fn colliding_sanitized_names_share_one_type_line() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a b".to_string(), 1);
        snap.counters.insert("a_b".to_string(), 2);
        let text = snap.to_prometheus();
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE a_b "))
            .count();
        assert_eq!(type_lines, 1, "{text}");
        assert!(text.contains("a_b{path=\"a b\"} 1"), "{text}");
        assert!(text.contains("a_b 2"), "{text}");
    }

    /// Hand-rolled property test (this crate deliberately has no
    /// dev-dependencies): for many pseudo-random value streams, the
    /// exposed histogram's cumulative bucket counts are non-decreasing,
    /// the `le` bounds strictly increase, and the `+Inf` bucket equals
    /// `_count`.
    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let mut state = 0x243F_6A88_85A3_08D3u64; // LCG seed
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for round in 0..50 {
            let reg = Registry::new();
            let n = 1 + (next() % 200) as usize;
            for _ in 0..n {
                // Spread values across many log2 buckets, including 0
                // and the overflow bucket.
                let shift = (next() % 64) as u32;
                let v = match next() % 8 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => next() >> shift,
                };
                reg.histogram_record("lat", v);
            }
            let snap = reg.snapshot();
            let text = snap.to_prometheus();

            let mut prev_cum = 0u64;
            let mut prev_le = -1.0f64;
            let mut inf_seen = false;
            for line in text.lines().filter(|l| l.starts_with("lat_bucket{")) {
                let le_raw = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .unwrap_or_else(|| panic!("round {round}: bad line {line:?}"));
                let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(cum >= prev_cum, "round {round}: counts dipped in {text}");
                prev_cum = cum;
                if le_raw == "+Inf" {
                    inf_seen = true;
                    assert_eq!(cum, n as u64, "round {round}: +Inf != count");
                } else {
                    let le: f64 = le_raw.parse().unwrap();
                    assert!(le > prev_le, "round {round}: le not increasing in {text}");
                    prev_le = le;
                }
            }
            assert!(inf_seen, "round {round}: missing +Inf bucket");
            assert!(
                text.contains(&format!("lat_count {n}")),
                "round {round}: {text}"
            );
        }
    }

    #[test]
    fn empty_snapshot_exposes_nothing() {
        assert_eq!(Snapshot::default().to_prometheus(), "");
    }
}
