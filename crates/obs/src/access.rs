//! Structured access logging: the `cubesfc-access-v1` NDJSON stream.
//!
//! One [`AccessRecord`] per served request — request ID, endpoint,
//! status, cache class, queue-wait and service microseconds, byte
//! counts, and a coarse outcome (`ok|rejected|deadline|error`). Records
//! live in a bounded [`Ring`](crate::series::Ring) with an exact
//! dropped counter (the same drop-with-exact-count contract the event
//! and telemetry buffers honor), so a busy server sheds old lines
//! instead of growing without bound.
//!
//! Serialization is hand-rolled with a fixed field order, so identical
//! records produce identical bytes: the stream is diffable modulo the
//! timing fields. The global log behind [`crate::access_record`] is
//! gated by a flag bit and costs one relaxed atomic load (and
//! allocates nothing) when off.

use crate::json::escape;
use crate::series::Ring;
use crate::value::JsonValue;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Schema tag carried by every access-log NDJSON line.
pub const ACCESS_SCHEMA: &str = "cubesfc-access-v1";

/// Default bounded capacity of the global access log, in records.
pub(crate) const DEFAULT_ACCESS_CAPACITY: usize = 1 << 16;

/// One served request, as the access log saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Monotonic line sequence number, assigned by the log.
    pub seq: u64,
    /// Request ID (client-supplied or server-generated), echoed to the
    /// client in the `x-cubesfc-request-id` response header.
    pub id: String,
    /// Endpoint label (`partition`, `metrics`, ...; `-` when the
    /// request was answered before it was read).
    pub endpoint: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Cache class (`hit`, `miss`, `coalesced`; `-` when the endpoint
    /// has no cache).
    pub cache: String,
    /// Microseconds spent in the admission queue.
    pub queue_us: u64,
    /// Microseconds from dequeue to the response being written.
    pub service_us: u64,
    /// Request body bytes (0 when the request was never read).
    pub bytes_in: u64,
    /// Response body bytes.
    pub bytes_out: u64,
    /// Coarse outcome: `ok`, `rejected` (429), `deadline` (504), or
    /// `error` (any other 4xx/5xx).
    pub outcome: String,
}

impl AccessRecord {
    /// Serialize as one `cubesfc-access-v1` NDJSON line (no trailing
    /// newline). Field order is fixed, so identical records produce
    /// identical bytes.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"schema\":\"{ACCESS_SCHEMA}\",\"seq\":{},\"id\":\"{}\",\"endpoint\":\"{}\",\
             \"status\":{},\"cache\":\"{}\",\"queue_us\":{},\"service_us\":{},\
             \"bytes_in\":{},\"bytes_out\":{},\"outcome\":\"{}\"}}",
            self.seq,
            escape(&self.id),
            escape(&self.endpoint),
            self.status,
            escape(&self.cache),
            self.queue_us,
            self.service_us,
            self.bytes_in,
            self.bytes_out,
            escape(&self.outcome)
        );
        s
    }

    /// Rebuild a record from a parsed NDJSON line.
    pub fn from_json(doc: &JsonValue) -> Result<AccessRecord, String> {
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing schema tag")?;
        if schema != ACCESS_SCHEMA {
            return Err(format!("schema {schema:?} is not {ACCESS_SCHEMA:?}"));
        }
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing {k}"))
        };
        let u64_field = |k: &str| {
            doc.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing {k}"))
        };
        Ok(AccessRecord {
            seq: u64_field("seq")?,
            id: str_field("id")?,
            endpoint: str_field("endpoint")?,
            status: u64_field("status")?
                .try_into()
                .map_err(|_| "status out of range".to_string())?,
            cache: str_field("cache")?,
            queue_us: u64_field("queue_us")?,
            service_us: u64_field("service_us")?,
            bytes_in: u64_field("bytes_in")?,
            bytes_out: u64_field("bytes_out")?,
            outcome: str_field("outcome")?,
        })
    }
}

/// Parse a whole `cubesfc-access-v1` NDJSON stream (blank lines
/// ignored). Errors carry the 1-based line number.
pub fn parse_access(text: &str) -> Result<Vec<AccessRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = crate::value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(AccessRecord::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

struct AccessState {
    seq: u64,
    ring: Ring<AccessRecord>,
}

/// A bounded, drop-counting access log. Explicit instances always
/// record; the process-global one (see [`crate::access_record`]) is
/// gated behind the flag byte.
pub struct AccessLog {
    state: Mutex<AccessState>,
}

impl AccessLog {
    /// A log retaining at most `capacity` records (newest win).
    pub fn new(capacity: usize) -> AccessLog {
        AccessLog {
            state: Mutex::new(AccessState {
                seq: 0,
                ring: Ring::new(capacity),
            }),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, AccessState> {
        self.state.lock().expect("access log poisoned")
    }

    /// Append one record, assigning its sequence number. Returns the
    /// assigned `seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        id: &str,
        endpoint: &str,
        status: u16,
        cache: &str,
        queue_us: u64,
        service_us: u64,
        bytes_in: u64,
        bytes_out: u64,
        outcome: &str,
    ) -> u64 {
        let mut st = self.state();
        let seq = st.seq;
        st.seq += 1;
        st.ring.push(AccessRecord {
            seq,
            id: id.to_string(),
            endpoint: endpoint.to_string(),
            status,
            cache: cache.to_string(),
            queue_us,
            service_us,
            bytes_in,
            bytes_out,
            outcome: outcome.to_string(),
        });
        seq
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> Vec<AccessRecord> {
        self.state().ring.iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.state().ring.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.state().ring.is_empty()
    }

    /// Exact number of records evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state().ring.dropped()
    }

    /// Export the retained window as `cubesfc-access-v1` NDJSON (one
    /// line per record, trailing newline).
    pub fn export_ndjson(&self) -> String {
        let st = self.state();
        let mut out = String::new();
        for r in st.ring.iter() {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Clear all records, the dropped counter, and the sequence.
    pub fn reset(&self) {
        let mut st = self.state();
        st.seq = 0;
        st.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> AccessRecord {
        AccessRecord {
            seq,
            id: format!("r{seq:06}"),
            endpoint: "partition".to_string(),
            status: 200,
            cache: "hit".to_string(),
            queue_us: 12,
            service_us: 340,
            bytes_in: 48,
            bytes_out: 96,
            outcome: "ok".to_string(),
        }
    }

    #[test]
    fn lines_round_trip_byte_for_byte() {
        let r = record(3);
        let line = r.to_json_line();
        let doc = crate::value::parse(&line).unwrap();
        let back = AccessRecord::from_json(&doc).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json_line(), line);
        // Identical records are byte-identical: the stream is stable
        // modulo the timing fields.
        assert_eq!(record(3).to_json_line(), line);
    }

    #[test]
    fn line_has_fixed_field_order() {
        let line = record(0).to_json_line();
        assert_eq!(
            line,
            "{\"schema\":\"cubesfc-access-v1\",\"seq\":0,\"id\":\"r000000\",\
             \"endpoint\":\"partition\",\"status\":200,\"cache\":\"hit\",\
             \"queue_us\":12,\"service_us\":340,\"bytes_in\":48,\"bytes_out\":96,\
             \"outcome\":\"ok\"}"
        );
    }

    #[test]
    fn log_assigns_sequence_and_counts_drops_exactly() {
        let log = AccessLog::new(3);
        for i in 0..8u64 {
            let seq = log.push(&format!("c{i}"), "metrics", 200, "-", 1, 2, 0, 10, "ok");
            assert_eq!(seq, i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 5);
        let seqs: Vec<u64> = log.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        let text = log.export_ndjson();
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_access(&text).unwrap();
        assert_eq!(parsed, log.records());
        log.reset();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.push("x", "-", 429, "-", 0, 0, 0, 0, "rejected"), 0);
    }

    #[test]
    fn malformed_streams_are_rejected_with_line_numbers() {
        assert!(parse_access("").unwrap().is_empty());
        let err = parse_access("{\"schema\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let good = record(0).to_json_line();
        let err = parse_access(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn hostile_ids_escape_cleanly() {
        let mut r = record(0);
        r.id = "weird \"id\"\nwith\\stuff".to_string();
        let line = r.to_json_line();
        let doc = crate::value::parse(&line).unwrap();
        assert_eq!(AccessRecord::from_json(&doc).unwrap(), r);
    }
}
