//! Asserts the acceptance criterion for disabled instrumentation: with
//! both global features off, every call site costs one relaxed atomic
//! load — the ring buffer stays empty, the registry stays empty, and
//! **no allocation occurs**.
//!
//! This lives in its own integration-test binary (one test only) so the
//! counting global allocator is not perturbed by concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_instrumentation_is_allocation_free_and_records_nothing() {
    cubesfc_obs::set_enabled(false);
    cubesfc_obs::set_trace_enabled(false);
    cubesfc_obs::set_telemetry_enabled(false);
    cubesfc_obs::set_access_enabled(false);

    // Pre-built outside the loop: the *call* must be free, the
    // caller's arguments may live wherever they like.
    let ranks = [1.0f64, 2.0, 3.0, 4.0];

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1000u64 {
        let _span = cubesfc_obs::span("partition/coarsen");
        cubesfc_obs::counter_add("halo/bytes_sent", i);
        cubesfc_obs::histogram_record("halo/message_bytes", i);
        let lane = cubesfc_obs::trace_lane("rank 0");
        lane.begin_with("compute", &[("elements", i)]);
        lane.instant("send", &[("bytes", i)]);
        lane.end();
        cubesfc_obs::trace_instant("exchange", &[("seq", i)]);
        let _slice = lane.span("scatter");
        cubesfc_obs::telemetry_record(
            "rebalance",
            i,
            &[("lb_measured", 0.1), ("migration_fraction", 0.0)],
            &ranks,
        );
        cubesfc_obs::access_record("r000001", "partition", 200, "hit", i, i, 48, 96, "ok");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled instrumentation must not allocate"
    );

    // Nothing was recorded anywhere: the ring buffer is empty, no events
    // were dropped (they were never offered), the registry is empty, and
    // the telemetry sampler saw no samples.
    assert_eq!(cubesfc_obs::tracer().event_count(), 0);
    assert_eq!(cubesfc_obs::tracer().dropped_events(), 0);
    assert!(cubesfc_obs::snapshot().is_empty());
    assert_eq!(cubesfc_obs::telemetry().sample_count(), 0);
    assert_eq!(cubesfc_obs::telemetry().dropped_samples(), 0);
    assert!(cubesfc_obs::access_log().is_empty());
    assert_eq!(cubesfc_obs::access_log().dropped(), 0);
}
