//! An epoch-stamped marker array: a reusable "have I seen this index
//! yet?" set with O(1) insert/query and O(1) clear.
//!
//! The partition-quality metrics and the TV gain scans repeatedly need
//! tiny distinct-sets over part ids inside per-vertex loops. A `Vec` +
//! `contains` is O(deg·parts-touched) per vertex; a hash set allocates.
//! The classic alternative is a stamp array: `stamp[i] == epoch` means
//! "`i` is in the set", and bumping the epoch empties the set without
//! touching memory. One `Marker` can therefore be reused across millions
//! of per-vertex scans with a single allocation.

/// A reusable stamped set over `0..len`.
#[derive(Clone, Debug)]
pub struct Marker {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Marker {
    /// A marker over the index domain `0..n`. No index is marked.
    pub fn new(n: usize) -> Marker {
        Marker {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// The index domain size.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Grow the domain to at least `n` (new indices start unmarked).
    pub fn ensure(&mut self, n: usize) {
        if n > self.stamp.len() {
            self.stamp.resize(n, 0);
        }
    }

    /// Empty the set in O(1) by advancing the epoch.
    pub fn clear(&mut self) {
        // On (unrealistic) u32 wraparound, hard-reset the stamps so a
        // stale stamp from 4 billion epochs ago can never read as marked.
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Mark `i`; returns `true` when `i` was not yet marked this epoch.
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    /// Whether `i` is marked this epoch.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_is_idempotent_per_epoch() {
        let mut m = Marker::new(4);
        assert!(m.mark(2));
        assert!(!m.mark(2));
        assert!(m.is_marked(2));
        assert!(!m.is_marked(3));
    }

    #[test]
    fn clear_empties_without_touching_memory() {
        let mut m = Marker::new(3);
        m.mark(0);
        m.mark(1);
        m.clear();
        assert!(!m.is_marked(0));
        assert!(!m.is_marked(1));
        assert!(m.mark(0));
    }

    #[test]
    fn ensure_grows_domain() {
        let mut m = Marker::new(2);
        m.ensure(10);
        assert_eq!(m.len(), 10);
        assert!(m.mark(9));
    }

    #[test]
    fn epoch_wraparound_never_resurrects_marks() {
        let mut m = Marker::new(2);
        m.mark(0);
        // Force the wrap path.
        m.epoch = u32::MAX;
        m.mark(1);
        m.clear();
        assert!(!m.is_marked(0));
        assert!(!m.is_marked(1));
    }
}
