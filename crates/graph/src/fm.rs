//! Fiduccia–Mattheyses boundary refinement for bisections.
//!
//! Used at every level of the multilevel bisection (the RB building
//! block). Minimizes the *weighted* edgecut subject to the balance caps;
//! zero-gain moves that improve balance are kept, so the refinement also
//! acts as the balancer after uncoarsening projections.

use crate::csr::CsrGraph;
use std::collections::BinaryHeap;

/// Weight targets and caps for a bisection.
#[derive(Clone, Copy, Debug)]
pub struct BisectTargets {
    /// Ideal weight of part 0.
    pub t0: u64,
    /// Ideal weight of part 1.
    pub t1: u64,
    /// Maximum allowed weight of part 0.
    pub cap0: u64,
    /// Maximum allowed weight of part 1.
    pub cap1: u64,
}

impl BisectTargets {
    /// Caps for the given targets using the shared weight-cap rule
    /// (`max(ceil(target × ub), target + max_vwgt)`).
    pub fn with_ub(t0: u64, t1: u64, ub: f64, max_vwgt: u64) -> BisectTargets {
        BisectTargets {
            t0,
            t1,
            cap0: crate::partition::weight_cap(t0, ub, max_vwgt),
            cap1: crate::partition::weight_cap(t1, ub, max_vwgt),
        }
    }

    fn cap(&self, side: usize) -> u64 {
        if side == 0 {
            self.cap0
        } else {
            self.cap1
        }
    }
}

/// Weighted cut of a 2-way assignment.
pub fn cut_weight_2way(g: &CsrGraph, parts: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.nv() {
        for (n, w) in g.neighbors(v) {
            if n > v && parts[n] != parts[v] {
                cut += w as u64;
            }
        }
    }
    cut
}

/// The FM gain of moving `v` to the other side: (external − internal)
/// incident edge weight.
fn gain_of(g: &CsrGraph, parts: &[u32], v: usize) -> i64 {
    let pv = parts[v];
    let mut gain = 0i64;
    for (n, w) in g.neighbors(v) {
        if parts[n] == pv {
            gain -= w as i64;
        } else {
            gain += w as i64;
        }
    }
    gain
}

/// Run up to `passes` FM passes over a 2-way partition, in place.
///
/// Returns the final weighted cut. The assignment always ends in a state
/// no worse (in cut, then balance distance) than the input *unless* the
/// input violated the caps, in which case the balance is restored first
/// at whatever cut cost is needed.
pub fn fm_refine(g: &CsrGraph, parts: &mut [u32], targets: &BisectTargets, passes: usize) -> u64 {
    let _span = cubesfc_obs::span("fm");
    debug_assert_eq!(parts.len(), g.nv());
    let mut weights = [0u64; 2];
    for (v, &p) in parts.iter().enumerate() {
        weights[p as usize] += g.vwgt[v] as u64;
    }

    rebalance(g, parts, &mut weights, targets);

    for _ in 0..passes {
        if !fm_pass(g, parts, &mut weights, targets) {
            break;
        }
    }
    cut_weight_2way(g, parts)
}

/// Force the partition back under its caps with minimum-damage moves.
fn rebalance(g: &CsrGraph, parts: &mut [u32], weights: &mut [u64; 2], t: &BisectTargets) {
    for from in 0..2usize {
        let to = 1 - from;
        while weights[from] > t.cap(from) {
            // Best-gain movable vertex on the `from` side.
            let mut best: Option<(i64, usize)> = None;
            for v in 0..g.nv() {
                if parts[v] as usize != from {
                    continue;
                }
                let gain = gain_of(g, parts, v);
                if best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, v));
                }
            }
            let Some((_, v)) = best else { break };
            parts[v] = to as u32;
            weights[from] -= g.vwgt[v] as u64;
            weights[to] += g.vwgt[v] as u64;
        }
    }
}

/// One FM pass. Returns whether the pass improved (cut, balance).
fn fm_pass(g: &CsrGraph, parts: &mut [u32], weights: &mut [u64; 2], t: &BisectTargets) -> bool {
    let nv = g.nv();
    let mut gain: Vec<i64> = (0..nv).map(|v| gain_of(g, parts, v)).collect();
    let mut locked = vec![false; nv];
    let mut heap: BinaryHeap<(i64, u32)> = (0..nv as u32).map(|v| (gain[v as usize], v)).collect();

    // Move log and best prefix.
    let mut moves: Vec<u32> = Vec::new();
    let mut cum: i64 = 0;
    let balance_dist =
        |w: &[u64; 2]| (w[0] as i64 - t.t0 as i64).abs() + (w[1] as i64 - t.t1 as i64).abs();
    let mut best = (0i64, balance_dist(weights), 0usize); // (cum gain, dist, prefix len)

    while let Some((gpop, v)) = heap.pop() {
        let v = v as usize;
        if locked[v] || gpop != gain[v] {
            continue; // stale entry
        }
        let from = parts[v] as usize;
        let to = 1 - from;
        if weights[to] + g.vwgt[v] as u64 > t.cap(to) {
            continue; // infeasible; may become feasible later, but skipping
                      // keeps the pass O(n log n) and FM passes iterate anyway
        }
        // Apply.
        parts[v] = to as u32;
        weights[from] -= g.vwgt[v] as u64;
        weights[to] += g.vwgt[v] as u64;
        locked[v] = true;
        cum += gain[v];
        moves.push(v as u32);

        let dist = balance_dist(weights);
        if cum > best.0 || (cum == best.0 && dist < best.1) {
            best = (cum, dist, moves.len());
        }

        for (n, _) in g.neighbors(v) {
            if !locked[n] {
                gain[n] = gain_of(g, parts, n);
                heap.push((gain[n], n as u32));
            }
        }
    }

    // Roll back past the best prefix.
    for &v in &moves[best.2..] {
        let v = v as usize;
        let from = parts[v] as usize;
        let to = 1 - from;
        parts[v] = to as u32;
        weights[from] -= g.vwgt[v] as u64;
        weights[to] += g.vwgt[v] as u64;
    }

    best.0 > 0 || (best.0 == 0 && best.2 > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single light edge: the obvious optimum
    /// splits the cliques apart.
    fn two_cliques() -> CsrGraph {
        let mut lists: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 8];
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    lists[a as usize].push((b, 10));
                    lists[(a + 4) as usize].push((b + 4, 10));
                }
            }
        }
        lists[0].push((4, 1));
        lists[4].push((0, 1));
        CsrGraph::from_lists(&lists).unwrap()
    }

    #[test]
    fn fm_finds_the_clique_split() {
        let g = two_cliques();
        // Start from a bad interleaved split.
        let mut parts = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let t = BisectTargets::with_ub(4, 4, 1.03, 1);
        let cut = fm_refine(&g, &mut parts, &t, 8);
        assert_eq!(cut, 1, "parts = {parts:?}");
        // Each clique in one piece.
        assert!(parts[..4].iter().all(|&p| p == parts[0]));
        assert!(parts[4..].iter().all(|&p| p == parts[4]));
        assert_ne!(parts[0], parts[4]);
    }

    #[test]
    fn fm_respects_caps() {
        let g = two_cliques();
        let mut parts = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let t = BisectTargets::with_ub(4, 4, 1.03, 1);
        fm_refine(&g, &mut parts, &t, 4);
        let w0 = parts.iter().filter(|&&p| p == 0).count() as u64;
        assert!(w0 <= t.cap0 && (8 - w0) <= t.cap1);
    }

    #[test]
    fn fm_never_worsens_an_optimal_split() {
        let g = two_cliques();
        let mut parts = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let before = cut_weight_2way(&g, &parts);
        let after = fm_refine(&g, &mut parts, &BisectTargets::with_ub(4, 4, 1.03, 1), 8);
        assert!(after <= before);
        assert_eq!(after, 1);
    }

    #[test]
    fn rebalance_restores_caps() {
        // All vertices on one side: must be pushed under the cap.
        let g = two_cliques();
        let mut parts = vec![0u32; 8];
        let t = BisectTargets::with_ub(4, 4, 1.03, 1);
        fm_refine(&g, &mut parts, &t, 2);
        let w0 = parts.iter().filter(|&&p| p == 0).count() as u64;
        assert!(w0 <= t.cap0, "w0 = {w0}");
    }

    #[test]
    fn zero_gain_balance_moves_are_taken() {
        // A 4-path 0-1-2-3 split {0,1,2}/{3}: moving 2 over is zero-gain
        // in cut (cut stays 1) but improves balance.
        let g = CsrGraph::from_lists(&[
            vec![(1, 1)],
            vec![(0, 1), (2, 1)],
            vec![(1, 1), (3, 1)],
            vec![(2, 1)],
        ])
        .unwrap();
        let mut parts = vec![0, 0, 0, 1];
        let t = BisectTargets::with_ub(2, 2, 1.03, 1);
        let cut = fm_refine(&g, &mut parts, &t, 4);
        assert_eq!(cut, 1);
        let w0 = parts.iter().filter(|&&p| p == 0).count();
        assert_eq!(w0, 2, "parts = {parts:?}");
    }

    #[test]
    fn cut_weight_basics() {
        let g = two_cliques();
        assert_eq!(cut_weight_2way(&g, &[0, 0, 0, 0, 1, 1, 1, 1]), 1);
        assert_eq!(cut_weight_2way(&g, &[0; 8]), 0);
    }
}
