//! Partition assignments and configuration.

use crate::csr::CsrGraph;
use std::fmt;

/// A partition of a graph's vertices into `nparts` parts.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(try_from = "SerdePartition", into = "SerdePartition")
)]
pub struct Partition {
    nparts: usize,
    assign: Vec<u32>,
}

/// Wire format for [`Partition`]: validation happens on deserialization.
#[cfg(feature = "serde")]
#[derive(serde::Serialize, serde::Deserialize)]
struct SerdePartition {
    nparts: usize,
    assign: Vec<u32>,
}

#[cfg(feature = "serde")]
impl TryFrom<SerdePartition> for Partition {
    type Error = String;
    fn try_from(w: SerdePartition) -> Result<Partition, String> {
        if w.nparts == 0 {
            return Err("nparts must be positive".into());
        }
        if let Some(bad) = w.assign.iter().find(|&&p| p as usize >= w.nparts) {
            return Err(format!(
                "assignment {bad} out of range for {} parts",
                w.nparts
            ));
        }
        Ok(Partition {
            nparts: w.nparts,
            assign: w.assign,
        })
    }
}

#[cfg(feature = "serde")]
impl From<Partition> for SerdePartition {
    fn from(p: Partition) -> SerdePartition {
        SerdePartition {
            nparts: p.nparts,
            assign: p.assign,
        }
    }
}

impl Partition {
    /// Wrap an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= nparts` or `nparts == 0`.
    pub fn new(nparts: usize, assign: Vec<u32>) -> Partition {
        assert!(nparts > 0, "nparts must be positive");
        assert!(
            assign.iter().all(|&p| (p as usize) < nparts),
            "assignment out of range"
        );
        Partition { nparts, assign }
    }

    /// Number of parts.
    #[inline]
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: usize) -> usize {
        self.assign[v] as usize
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// Per-part total vertex weight.
    pub fn part_weights(&self, g: &CsrGraph) -> Vec<u64> {
        let mut w = vec![0u64; self.nparts];
        for (v, &p) in self.assign.iter().enumerate() {
            w[p as usize] += g.vwgt[v] as u64;
        }
        w
    }

    /// Per-part vertex counts.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.nparts];
        for &p in &self.assign {
            s[p as usize] += 1;
        }
        s
    }

    /// Number of non-empty parts.
    pub fn nonempty_parts(&self) -> usize {
        self.part_sizes().iter().filter(|&&s| s > 0).count()
    }

    /// The vertices of each part.
    pub fn part_members(&self) -> Vec<Vec<u32>> {
        let mut m = vec![Vec::new(); self.nparts];
        for (v, &p) in self.assign.iter().enumerate() {
            m[p as usize].push(v as u32);
        }
        m
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition of {} vertices into {}",
            self.len(),
            self.nparts
        )
    }
}

/// Configuration shared by the partitioning drivers.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Number of parts to produce.
    pub nparts: usize,
    /// Balance tolerance: a part may weigh up to `ub_factor ×` its target
    /// (METIS's default is 1.03). The effective cap is never below
    /// `target + max_vwgt` so refinement cannot deadlock on heavy coarse
    /// vertices — which is also what produces the ±1-element imbalance the
    /// paper observed at O(1) elements per processor.
    pub ub_factor: f64,
    /// Seed for the deterministic RNG.
    pub seed: u64,
    /// FM / k-way refinement pass limit per level.
    pub refine_passes: usize,
    /// Number of random initial-bisection attempts on the coarsest graph.
    pub init_tries: usize,
    /// Stop coarsening once the graph has at most this many vertices
    /// (scaled by `nparts` in the k-way driver).
    pub coarsen_to: usize,
}

impl PartitionConfig {
    /// METIS-like defaults for `nparts`.
    pub fn new(nparts: usize) -> PartitionConfig {
        PartitionConfig {
            nparts,
            ub_factor: 1.03,
            seed: 0x5EED,
            refine_passes: 8,
            init_tries: 4,
            coarsen_to: 120,
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> PartitionConfig {
        self.seed = seed;
        self
    }

    /// Override the balance tolerance (builder style).
    pub fn with_ub_factor(mut self, ub: f64) -> PartitionConfig {
        assert!(ub >= 1.0, "ub_factor must be >= 1");
        self.ub_factor = ub;
        self
    }
}

/// The maximum allowed part weight for a target weight `target` under
/// tolerance `ub`, given the heaviest vertex weight in the current graph.
pub(crate) fn weight_cap(target: u64, ub: f64, max_vwgt: u64) -> u64 {
    let by_factor = (target as f64 * ub).ceil() as u64;
    by_factor.max(target + max_vwgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    fn path3() -> CsrGraph {
        CsrGraph::from_lists(&[vec![(1, 1)], vec![(0, 1), (2, 1)], vec![(1, 1)]]).unwrap()
    }

    #[test]
    fn part_sizes_and_weights() {
        let g = path3();
        let p = Partition::new(2, vec![0, 0, 1]);
        assert_eq!(p.part_sizes(), vec![2, 1]);
        assert_eq!(p.part_weights(&g), vec![2, 1]);
        assert_eq!(p.nonempty_parts(), 2);
        assert_eq!(p.part_of(2), 1);
    }

    #[test]
    fn members_listed_in_order() {
        let p = Partition::new(2, vec![1, 0, 1]);
        assert_eq!(p.part_members(), vec![vec![1], vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_panics() {
        Partition::new(2, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parts_panics() {
        Partition::new(0, vec![]);
    }

    #[test]
    fn weight_cap_unit_weights() {
        // target 2, 3% tolerance, unit vertices: cap is 3 (the +1 slack
        // that yields the paper's observed O(1)-elements imbalance).
        assert_eq!(weight_cap(2, 1.03, 1), 3);
        assert_eq!(weight_cap(1, 1.03, 1), 2);
        // Larger targets: percentage dominates.
        assert_eq!(weight_cap(96, 1.03, 1), 99);
    }

    #[test]
    fn config_builders() {
        let c = PartitionConfig::new(4).with_seed(9).with_ub_factor(1.1);
        assert_eq!(c.nparts, 4);
        assert_eq!(c.seed, 9);
        assert!((c.ub_factor - 1.1).abs() < 1e-12);
    }
}
