//! Graph partitioning for the cubed-sphere reproduction: a from-scratch
//! multilevel partitioner standing in for METIS.
//!
//! The paper compares its space-filling-curve partitions against three
//! METIS algorithms (§2):
//!
//! * **RB** — recursive bisection ([`recursive_bisection`]): "best for
//!   load balancing, but results in larger edgecuts";
//! * **KWAY** — direct K-way ([`kway()`]): "minimizes edgecuts but may
//!   result in sub-optimal load balance";
//! * **TV** — a K-way variant minimizing total communication volume
//!   ([`kway_volume`]).
//!
//! All three are implemented here in the Karypis–Kumar multilevel style:
//! heavy-edge-matching coarsening, greedy-graph-growing initial
//! bisections, and Fiduccia–Mattheyses / greedy k-way refinement during
//! uncoarsening. Balance follows METIS's convention of a multiplicative
//! tolerance (default 3 %) floored at one extra vertex — which is what
//! produces the O(1)-elements-per-processor imbalance the paper's SFC
//! partitions eliminate.
//!
//! # Quick start
//!
//! ```
//! use cubesfc_graph::{CsrGraph, PartitionConfig, kway, metrics};
//!
//! // A ring of 8 unit-weight vertices.
//! let lists: Vec<Vec<(u32, u32)>> = (0..8)
//!     .map(|v| vec![(((v + 7) % 8) as u32, 1), (((v + 1) % 8) as u32, 1)])
//!     .collect();
//! let g = CsrGraph::from_lists(&lists).unwrap();
//!
//! let p = kway(&g, &PartitionConfig::new(2));
//! assert_eq!(metrics::edgecut(&g, &p), 2); // a ring cuts in exactly 2 places
//! ```

#![warn(missing_docs)]

pub mod bisect;
pub mod coarsen;
pub mod csr;
pub mod fm;
pub mod initial;
pub mod kway;
pub mod marker;
pub mod metrics;
pub mod migration;
pub mod partition;
pub mod rng;
pub mod split;
pub mod tv;

pub use bisect::{multilevel_bisect, recursive_bisection, recursive_bisection_serial};
pub use csr::{CsrGraph, GraphError};
pub use kway::kway;
pub use marker::Marker;
pub use metrics::{load_balance, load_balance_f64, part_loads, partition_stats, PartitionStats};
pub use migration::{
    match_labels, matched_migration, migration_fraction, raw_migration, MigrationError,
    EXACT_MATCH_LIMIT,
};
pub use partition::{Partition, PartitionConfig};
pub use rng::SplitMix64;
pub use split::{split_order_weighted, split_order_weighted_capacity, SplitError};
pub use tv::kway_volume;
