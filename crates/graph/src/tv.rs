//! Total-communication-volume (TV) partitioning — METIS's
//! `PartGraphKway` with the volume objective.
//!
//! "A variant of the K-way algorithm minimizes the total communication
//! volume (TV)" (paper §2). The volume objective counts, for every
//! vertex, the number of *distinct remote parts* among its neighbours
//! (each distinct remote part receives one copy of the vertex's data),
//! rather than the number of cut edges.
//!
//! The paper found, to its surprise, that TV did **not** always yield a
//! lower communication volume than KWAY on the cubed-sphere
//! ("This result directly contradicts the expected minimization property
//! of the TV algorithm and warrants further investigation") — greedy
//! volume refinement from a cut-optimized start is exactly the kind of
//! local search that can get stuck that way, and the experiment harness
//! records what our implementation produces.

use crate::csr::CsrGraph;
use crate::kway::kway;
use crate::marker::Marker;
use crate::partition::{weight_cap, Partition, PartitionConfig};
use crate::rng::SplitMix64;

/// Volume contribution of vertex `v` under `parts`: the number of
/// distinct parts other than `own` among its neighbours. `seen` is a
/// reusable stamped marker over part ids (cleared here).
fn vertex_volume(g: &CsrGraph, parts: &[u32], v: usize, own: u32, seen: &mut Marker) -> u32 {
    let mut distinct = 0u32;
    seen.clear();
    for (n, _) in g.neighbors(v) {
        let p = parts[n];
        if p != own && seen.mark(p as usize) {
            distinct += 1;
        }
    }
    distinct
}

/// Exact change in total communication volume if `v` moves to `to`.
///
/// Convenience wrapper over [`volume_delta_with`] that allocates its own
/// scratch marker; hot loops should hold a [`Marker`] and call
/// [`volume_delta_with`] instead.
pub fn volume_delta(g: &CsrGraph, parts: &[u32], v: usize, to: u32) -> i64 {
    let nparts = parts.iter().copied().max().map_or(0, |p| p as usize + 1);
    let mut seen = Marker::new(nparts.max(to as usize + 1));
    volume_delta_with(g, parts, v, to, &mut seen)
}

/// Exact change in total communication volume if `v` moves to `to`,
/// using caller-provided scratch.
///
/// Affects `v`'s own contribution and the contributions of each of its
/// neighbours (for whom `v`'s part membership may add or remove a distinct
/// remote part).
pub fn volume_delta_with(g: &CsrGraph, parts: &[u32], v: usize, to: u32, seen: &mut Marker) -> i64 {
    let from = parts[v];
    if from == to {
        return 0;
    }
    let mut delta = 0i64;
    // v's own contribution before/after.
    delta -= vertex_volume(g, parts, v, from, seen) as i64;
    delta += post_move_vertex_volume(g, parts, v, to, seen);

    // Neighbours: does `from` remain among their remote parts? does `to`
    // become new?
    for (u, _) in g.neighbors(v) {
        let pu = parts[u];
        // Count u's neighbours in `from` and `to`, excluding v itself.
        let mut others_in_from = false;
        let mut others_in_to = false;
        for (w, _) in g.neighbors(u) {
            if w == v {
                continue;
            }
            if parts[w] == from {
                others_in_from = true;
            }
            if parts[w] == to {
                others_in_to = true;
            }
        }
        // Before: v contributed `from` to u's remote set iff from != pu and
        // no other neighbour of u is in `from`.
        if from != pu && !others_in_from {
            delta -= 1;
        }
        // After: v contributes `to` iff to != pu and no other neighbour in
        // `to`.
        if to != pu && !others_in_to {
            delta += 1;
        }
    }
    delta
}

/// `v`'s own volume contribution after a hypothetical move to `to`.
fn post_move_vertex_volume(
    g: &CsrGraph,
    parts: &[u32],
    v: usize,
    to: u32,
    seen: &mut Marker,
) -> i64 {
    let mut distinct = 0i64;
    seen.clear();
    for (n, _) in g.neighbors(v) {
        let p = parts[n];
        if p != to && seen.mark(p as usize) {
            distinct += 1;
        }
    }
    distinct
}

/// Greedy volume refinement, in place. Returns the number of moves made.
pub fn volume_refine(
    g: &CsrGraph,
    parts: &mut [u32],
    nparts: usize,
    cap: u64,
    passes: usize,
    rng: &mut SplitMix64,
) -> usize {
    let nv = g.nv();
    let mut weights = vec![0u64; nparts];
    for (v, &p) in parts.iter().enumerate() {
        weights[p as usize] += g.vwgt[v] as u64;
    }
    let mut total_moves = 0;
    // Reusable stamped markers: candidate dedup and the delta scans.
    let mut cand_seen = Marker::new(nparts);
    let mut delta_seen = Marker::new(nparts);
    let mut cands: Vec<u32> = Vec::with_capacity(8);
    for _ in 0..passes {
        let mut moves = 0;
        for &vv in &rng.permutation(nv) {
            let v = vv as usize;
            let from = parts[v] as usize;
            let vw = g.vwgt[v] as u64;
            // Candidate destinations: the parts of v's neighbours.
            cands.clear();
            cand_seen.clear();
            for (n, _) in g.neighbors(v) {
                let p = parts[n];
                if p as usize != from && cand_seen.mark(p as usize) {
                    cands.push(p);
                }
            }
            let mut best: Option<(i64, u32)> = None;
            for &to in &cands {
                if weights[to as usize] + vw > cap {
                    continue;
                }
                let d = volume_delta_with(g, parts, v, to, &mut delta_seen);
                let better = match best {
                    None => d < 0 || (d == 0 && weights[to as usize] + vw < weights[from]),
                    Some((bd, bt)) => {
                        d < bd || (d == bd && weights[to as usize] < weights[bt as usize])
                    }
                };
                if better {
                    best = Some((d, to));
                }
            }
            if let Some((d, to)) = best {
                let improves_balance = weights[to as usize] + vw < weights[from];
                if d < 0 || (d == 0 && improves_balance) {
                    parts[v] = to;
                    weights[from] -= vw;
                    weights[to as usize] += vw;
                    moves += 1;
                }
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

/// The TV driver: a K-way partition post-optimized for total
/// communication volume.
pub fn kway_volume(g: &CsrGraph, cfg: &PartitionConfig) -> Partition {
    let _span = cubesfc_obs::span("tv");
    if cfg.nparts == 1 {
        return Partition::new(1, vec![0; g.nv()]);
    }
    let base = kway(g, cfg);
    let mut parts = base.assignment().to_vec();
    let target = g.total_vwgt() / cfg.nparts as u64;
    let cap = weight_cap(target, cfg.ub_factor, g.max_vwgt());
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5456_5456); // "TVTV"
    volume_refine(g, &mut parts, cfg.nparts, cap, cfg.refine_passes, &mut rng);
    Partition::new(cfg.nparts, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{load_balance, metis_volume};

    fn grid(w: usize, h: usize) -> CsrGraph {
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let mut lists = vec![Vec::new(); w * h];
        for y in 0..h {
            for x in 0..w {
                let mut l = Vec::new();
                if x > 0 {
                    l.push((idx(x - 1, y), 1));
                }
                if x + 1 < w {
                    l.push((idx(x + 1, y), 1));
                }
                if y > 0 {
                    l.push((idx(x, y - 1), 1));
                }
                if y + 1 < h {
                    l.push((idx(x, y + 1), 1));
                }
                lists[idx(x, y) as usize] = l;
            }
        }
        CsrGraph::from_lists(&lists).unwrap()
    }

    #[test]
    fn volume_delta_matches_recomputation() {
        let g = grid(5, 5);
        let mut rng = SplitMix64::new(4);
        let mut parts: Vec<u32> = (0..25).map(|_| rng.below(3) as u32).collect();
        for v in 0..25 {
            for to in 0..3u32 {
                let before = metis_volume(&g, &Partition::new(3, parts.clone())) as i64;
                let d = volume_delta(&g, &parts, v, to);
                let old = parts[v];
                parts[v] = to;
                let after = metis_volume(&g, &Partition::new(3, parts.clone())) as i64;
                parts[v] = old;
                assert_eq!(d, after - before, "v={v} to={to}");
            }
        }
    }

    #[test]
    fn volume_refine_lowers_volume() {
        let g = grid(8, 8);
        // Checkerboard: worst-case volume.
        let mut parts: Vec<u32> = (0..64u32).map(|v| (v + v / 8) % 2).collect();
        let before = metis_volume(&g, &Partition::new(2, parts.clone()));
        let mut rng = SplitMix64::new(8);
        volume_refine(&g, &mut parts, 2, 36, 8, &mut rng);
        let after = metis_volume(&g, &Partition::new(2, parts.clone()));
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn kway_volume_produces_valid_partition() {
        let g = grid(8, 8);
        let cfg = PartitionConfig::new(4);
        let p = kway_volume(&g, &cfg);
        assert_eq!(p.len(), 64);
        assert!(p.nonempty_parts() >= 3);
        let cap = weight_cap(16, cfg.ub_factor, 1);
        assert!(p.part_weights(&g).iter().all(|&w| w <= cap));
        assert!(load_balance(&p.part_weights(&g)) < 0.4);
    }

    #[test]
    fn kway_volume_volume_not_worse_than_kway_start() {
        let g = grid(10, 10);
        let cfg = PartitionConfig::new(5);
        let k = kway(&g, &cfg);
        let t = kway_volume(&g, &cfg);
        assert!(metis_volume(&g, &t) <= metis_volume(&g, &k));
    }

    #[test]
    fn single_part_trivial() {
        let g = grid(3, 3);
        let p = kway_volume(&g, &PartitionConfig::new(1));
        assert!(p.assignment().iter().all(|&x| x == 0));
    }
}
