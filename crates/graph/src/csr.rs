//! Compressed-sparse-row undirected weighted graphs.
//!
//! The layout matches the classic METIS interface: vertex `v`'s neighbours
//! are `adjncy[xadj[v]..xadj[v+1]]` with edge weights in the parallel
//! `adjwgt` positions, and every undirected edge is stored twice.

use std::fmt;

/// Errors detected by [`CsrGraph::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// `xadj` is empty or not monotonically non-decreasing.
    BadRowPointers,
    /// `adjncy`/`adjwgt` lengths disagree with `xadj`.
    LengthMismatch,
    /// A neighbour index is out of range.
    NeighborOutOfRange {
        /// Source vertex.
        vertex: usize,
        /// Offending neighbour value.
        neighbor: u32,
    },
    /// A vertex lists itself as a neighbour.
    SelfLoop {
        /// Offending vertex.
        vertex: usize,
    },
    /// Edge `(u, v)` has no matching reverse edge of equal weight.
    Asymmetric {
        /// Source vertex.
        u: usize,
        /// Destination vertex.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadRowPointers => write!(f, "xadj is not a valid row-pointer array"),
            GraphError::LengthMismatch => write!(f, "adjncy/adjwgt/vwgt lengths inconsistent"),
            GraphError::NeighborOutOfRange { vertex, neighbor } => {
                write!(f, "vertex {vertex} lists out-of-range neighbor {neighbor}")
            }
            GraphError::SelfLoop { vertex } => write!(f, "vertex {vertex} has a self-loop"),
            GraphError::Asymmetric { u, v } => {
                write!(f, "edge ({u},{v}) has no equal-weight reverse edge")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected weighted graph in CSR form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsrGraph {
    /// Row pointers, length `nv + 1`.
    pub xadj: Vec<u32>,
    /// Flattened neighbour lists (each undirected edge appears twice).
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u32>,
    /// Vertex weights, length `nv`.
    pub vwgt: Vec<u32>,
}

impl CsrGraph {
    /// Construct and validate a graph.
    pub fn new(
        xadj: Vec<u32>,
        adjncy: Vec<u32>,
        adjwgt: Vec<u32>,
        vwgt: Vec<u32>,
    ) -> Result<CsrGraph, GraphError> {
        let g = CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        };
        g.validate()?;
        Ok(g)
    }

    /// Build from per-vertex adjacency lists `(neighbor, weight)`.
    ///
    /// Lists must already be symmetric; weights default vertex weight 1.
    pub fn from_lists(lists: &[Vec<(u32, u32)>]) -> Result<CsrGraph, GraphError> {
        let mut xadj = Vec::with_capacity(lists.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0u32);
        for l in lists {
            for &(n, w) in l {
                adjncy.push(n);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len() as u32);
        }
        CsrGraph::new(xadj, adjncy, adjwgt, vec![1; lists.len()])
    }

    /// Number of vertices.
    #[inline]
    pub fn nv(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn ne(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// The neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, u32)> + '_ {
        let lo = self.xadj[v] as usize;
        let hi = self.xadj[v + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .zip(&self.adjwgt[lo..hi])
            .map(|(&n, &w)| (n as usize, w))
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    /// Heaviest vertex weight (0 for empty graphs).
    pub fn max_vwgt(&self) -> u64 {
        self.vwgt.iter().copied().max().unwrap_or(0) as u64
    }

    /// Full validation of the CSR invariants (symmetry included).
    pub fn validate(&self) -> Result<(), GraphError> {
        let nv = self.vwgt.len();
        if self.xadj.len() != nv + 1 || self.xadj.first() != Some(&0) {
            return Err(GraphError::BadRowPointers);
        }
        if self.xadj.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::BadRowPointers);
        }
        if *self.xadj.last().unwrap() as usize != self.adjncy.len()
            || self.adjncy.len() != self.adjwgt.len()
        {
            return Err(GraphError::LengthMismatch);
        }
        for v in 0..nv {
            for (n, w) in self.neighbors(v) {
                if n >= nv {
                    return Err(GraphError::NeighborOutOfRange {
                        vertex: v,
                        neighbor: n as u32,
                    });
                }
                if n == v {
                    return Err(GraphError::SelfLoop { vertex: v });
                }
                if !self.neighbors(n).any(|(m, wm)| m == v && wm == w) {
                    return Err(GraphError::Asymmetric { u: v, v: n });
                }
            }
        }
        Ok(())
    }

    /// Whether the graph is connected (trivially true for `nv <= 1`).
    pub fn is_connected(&self) -> bool {
        let nv = self.nv();
        if nv <= 1 {
            return true;
        }
        let mut seen = vec![false; nv];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for (n, _) in self.neighbors(v) {
                if !seen[n] {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        count == nv
    }

    /// Extract the induced subgraph on `verts` (which must be distinct).
    ///
    /// Returns the subgraph and the mapping `local -> global`.
    pub fn subgraph(&self, verts: &[u32]) -> (CsrGraph, Vec<u32>) {
        let mut global_to_local = vec![u32::MAX; self.nv()];
        for (l, &g) in verts.iter().enumerate() {
            debug_assert_eq!(global_to_local[g as usize], u32::MAX);
            global_to_local[g as usize] = l as u32;
        }
        let mut xadj = Vec::with_capacity(verts.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(verts.len());
        xadj.push(0u32);
        for &g in verts {
            vwgt.push(self.vwgt[g as usize]);
            for (n, w) in self.neighbors(g as usize) {
                let ln = global_to_local[n];
                if ln != u32::MAX {
                    adjncy.push(ln);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len() as u32);
        }
        (
            CsrGraph {
                xadj,
                adjncy,
                adjwgt,
                vwgt,
            },
            verts.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-cycle with unit weights.
    fn cycle4() -> CsrGraph {
        CsrGraph::from_lists(&[
            vec![(1, 1), (3, 1)],
            vec![(0, 1), (2, 1)],
            vec![(1, 1), (3, 1)],
            vec![(2, 1), (0, 1)],
        ])
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = cycle4();
        assert_eq!(g.nv(), 4);
        assert_eq!(g.ne(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.total_vwgt(), 4);
        assert_eq!(g.max_vwgt(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn validation_catches_self_loop() {
        let r = CsrGraph::new(vec![0, 1], vec![0], vec![1], vec![1]);
        assert_eq!(r.unwrap_err(), GraphError::SelfLoop { vertex: 0 });
    }

    #[test]
    fn validation_catches_asymmetry() {
        let r = CsrGraph::new(vec![0, 1, 1], vec![1], vec![1], vec![1, 1]);
        assert!(matches!(r.unwrap_err(), GraphError::Asymmetric { .. }));
    }

    #[test]
    fn validation_catches_out_of_range() {
        let r = CsrGraph::new(vec![0, 1], vec![5], vec![1], vec![1]);
        assert!(matches!(
            r.unwrap_err(),
            GraphError::NeighborOutOfRange { .. }
        ));
    }

    #[test]
    fn validation_catches_weight_mismatch() {
        // Reverse edge exists but with different weight.
        let r = CsrGraph::new(vec![0, 1, 2], vec![1, 0], vec![2, 3], vec![1, 1]);
        assert!(matches!(r.unwrap_err(), GraphError::Asymmetric { .. }));
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CsrGraph::new(vec![0, 1, 2, 2], vec![1, 0], vec![1, 1], vec![1, 1, 1]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn subgraph_extraction() {
        let g = cycle4();
        let (s, map) = g.subgraph(&[0, 1]);
        assert_eq!(s.nv(), 2);
        assert_eq!(s.ne(), 1); // only the 0-1 edge survives
        assert_eq!(map, vec![0, 1]);
        s.validate().unwrap();
    }

    #[test]
    fn subgraph_preserves_weights() {
        let mut g = cycle4();
        g.vwgt = vec![5, 6, 7, 8];
        let (s, _) = g.subgraph(&[2, 3]);
        assert_eq!(s.vwgt, vec![7, 8]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::new(vec![0], vec![], vec![], vec![]).unwrap();
        assert_eq!(g.nv(), 0);
        assert!(g.is_connected());
    }
}
