//! Initial bisection of the coarsest graph: greedy graph growing.
//!
//! From a random seed vertex, grow part 0 by repeatedly absorbing the
//! frontier vertex whose move is cheapest (max FM gain), until part 0
//! reaches its target weight. Several seeds are tried and the best result
//! (after a quick FM polish) is kept.

use crate::csr::CsrGraph;
use crate::fm::{fm_refine, BisectTargets};
use crate::rng::SplitMix64;

/// Grow one candidate bisection from `seed`.
fn grow_from(g: &CsrGraph, seed: usize, t0: u64) -> Vec<u32> {
    let nv = g.nv();
    let mut parts = vec![1u32; nv];
    let mut w0 = 0u64;
    let mut in_frontier = vec![false; nv];
    let mut frontier: Vec<u32> = Vec::new();

    let absorb = |v: usize,
                  parts: &mut Vec<u32>,
                  frontier: &mut Vec<u32>,
                  in_frontier: &mut Vec<bool>,
                  w0: &mut u64| {
        parts[v] = 0;
        *w0 += g.vwgt[v] as u64;
        for (n, _) in g.neighbors(v) {
            if parts[n] == 1 && !in_frontier[n] {
                in_frontier[n] = true;
                frontier.push(n as u32);
            }
        }
    };

    absorb(seed, &mut parts, &mut frontier, &mut in_frontier, &mut w0);
    while w0 < t0 {
        // Pick the frontier vertex with the max gain toward part 0:
        // (weight to part 0) − (weight to part 1).
        let mut best: Option<(i64, usize, usize)> = None; // (gain, idx, v)
        for (idx, &fv) in frontier.iter().enumerate() {
            let v = fv as usize;
            if parts[v] == 0 {
                continue; // already absorbed
            }
            let mut gain = 0i64;
            for (n, w) in g.neighbors(v) {
                if parts[n] == 0 {
                    gain += w as i64;
                } else {
                    gain -= w as i64;
                }
            }
            if best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, idx, v));
            }
        }
        let Some((_, idx, v)) = best else {
            // Frontier exhausted (disconnected graph): absorb any part-1
            // vertex to keep making progress.
            match parts.iter().position(|&p| p == 1) {
                Some(v) => {
                    absorb(v, &mut parts, &mut frontier, &mut in_frontier, &mut w0);
                    continue;
                }
                None => break,
            }
        };
        frontier.swap_remove(idx);
        absorb(v, &mut parts, &mut frontier, &mut in_frontier, &mut w0);
    }
    parts
}

/// Produce an initial bisection with part-0 target weight `t0`.
///
/// `tries` seeds are grown, each polished with a couple of FM passes; the
/// lowest-cut feasible result wins.
pub fn greedy_graph_growing(
    g: &CsrGraph,
    targets: &BisectTargets,
    tries: usize,
    rng: &mut SplitMix64,
) -> Vec<u32> {
    let _span = cubesfc_obs::span("initial");
    let nv = g.nv();
    assert!(nv > 0, "cannot bisect an empty graph");
    let mut best: Option<(u64, Vec<u32>)> = None;
    for _ in 0..tries.max(1) {
        let seed = rng.below(nv);
        let mut parts = grow_from(g, seed, targets.t0);
        let cut = fm_refine(g, &mut parts, targets, 2);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, parts));
        }
    }
    best.unwrap().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::cut_weight_2way;

    fn grid(w: usize, h: usize) -> CsrGraph {
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let mut lists = vec![Vec::new(); w * h];
        for y in 0..h {
            for x in 0..w {
                let mut l = Vec::new();
                if x > 0 {
                    l.push((idx(x - 1, y), 1));
                }
                if x + 1 < w {
                    l.push((idx(x + 1, y), 1));
                }
                if y > 0 {
                    l.push((idx(x, y - 1), 1));
                }
                if y + 1 < h {
                    l.push((idx(x, y + 1), 1));
                }
                lists[idx(x, y) as usize] = l;
            }
        }
        CsrGraph::from_lists(&lists).unwrap()
    }

    #[test]
    fn ggg_produces_balanced_bisection() {
        let g = grid(8, 8);
        let t = BisectTargets::with_ub(32, 32, 1.03, 1);
        let mut rng = SplitMix64::new(11);
        let parts = greedy_graph_growing(&g, &t, 4, &mut rng);
        let w0 = parts.iter().filter(|&&p| p == 0).count() as u64;
        assert!(w0 <= t.cap0 && 64 - w0 <= t.cap1, "w0 = {w0}");
    }

    #[test]
    fn ggg_cut_is_near_optimal_on_grid() {
        // 8×8 grid: optimal bisection cut is 8 (a straight line).
        let g = grid(8, 8);
        let t = BisectTargets::with_ub(32, 32, 1.03, 1);
        let mut rng = SplitMix64::new(7);
        let parts = greedy_graph_growing(&g, &t, 8, &mut rng);
        let cut = cut_weight_2way(&g, &parts);
        assert!(cut <= 12, "cut = {cut}");
    }

    #[test]
    fn ggg_handles_disconnected_graphs() {
        // Two disjoint edges.
        let g = CsrGraph::from_lists(&[vec![(1, 1)], vec![(0, 1)], vec![(3, 1)], vec![(2, 1)]])
            .unwrap();
        let t = BisectTargets::with_ub(2, 2, 1.03, 1);
        let mut rng = SplitMix64::new(1);
        let parts = greedy_graph_growing(&g, &t, 2, &mut rng);
        let w0 = parts.iter().filter(|&&p| p == 0).count();
        assert_eq!(w0, 2);
    }

    #[test]
    fn ggg_asymmetric_target() {
        let g = grid(6, 6);
        // 1/3 vs 2/3 split.
        let t = BisectTargets::with_ub(12, 24, 1.03, 1);
        let mut rng = SplitMix64::new(5);
        let parts = greedy_graph_growing(&g, &t, 4, &mut rng);
        let w0 = parts.iter().filter(|&&p| p == 0).count() as u64;
        assert!(w0 <= t.cap0, "w0 = {w0}");
        assert!(36 - w0 <= t.cap1, "w1 = {}", 36 - w0);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::new(vec![0, 0], vec![], vec![], vec![1]).unwrap();
        let t = BisectTargets::with_ub(1, 0, 1.03, 1);
        let mut rng = SplitMix64::new(2);
        let parts = greedy_graph_growing(&g, &t, 1, &mut rng);
        assert_eq!(parts.len(), 1);
    }
}
