//! Migration volume between two partitions, and the label matching that
//! makes it meaningful.
//!
//! Part labels are arbitrary: "everything moved one rank over" is a full
//! reshuffle by raw label comparison but a no-op after relabelling. The
//! functions here match the new partition's labels onto the old one's by
//! maximising element overlap — exactly (assignment problem, solved by
//! subset DP) when both partitions are small enough, greedily otherwise —
//! and count the elements that still change owner. The matching itself
//! ([`match_labels`]) is exposed because a migration planner needs the
//! relabelling, not just the count.

use crate::partition::Partition;
use std::fmt;

/// Largest part count (on either side) for which [`match_labels`] runs
/// the exact assignment solver; above it the greedy heuristic is used.
///
/// The exact solver is a subset DP over one side's parts — `O(2^n · n²)`
/// time and `O(2^n · n)` choice table — so 12 keeps it under a
/// millisecond while covering every small-`Nproc` configuration where
/// the greedy heuristic's over-count is proportionally worst.
pub const EXACT_MATCH_LIMIT: usize = 12;

/// Errors from the migration-volume functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationError {
    /// The two partitions assign different numbers of elements.
    SizeMismatch {
        /// Element count of the first partition.
        left: usize,
        /// Element count of the second partition.
        right: usize,
    },
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::SizeMismatch { left, right } => {
                write!(f, "partition size mismatch: {left} vs {right} elements")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

fn check_sizes(a: &Partition, b: &Partition) -> Result<(), MigrationError> {
    if a.len() != b.len() {
        return Err(MigrationError::SizeMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

/// Number of elements whose part differs between `a` and `b`
/// (raw, label-sensitive).
pub fn raw_migration(a: &Partition, b: &Partition) -> Result<usize, MigrationError> {
    check_sizes(a, b)?;
    Ok(a.assignment()
        .iter()
        .zip(b.assignment())
        .filter(|(x, y)| x != y)
        .count())
}

/// The element-overlap matrix: `overlap[pa * kb + pb]` counts elements in
/// old part `pa` and new part `pb`.
fn overlap_matrix(a: &Partition, b: &Partition) -> Vec<usize> {
    let kb = b.nparts();
    let mut overlap = vec![0usize; a.nparts() * kb];
    for (x, y) in a.assignment().iter().zip(b.assignment()) {
        overlap[*x as usize * kb + *y as usize] += 1;
    }
    overlap
}

/// Greedy matching: repeatedly pair the largest remaining overlap.
/// Returns `mapped[pb] = pa` with `usize::MAX` for unmatched new parts.
fn greedy_matching(overlap: &[usize], ka: usize, kb: usize) -> Vec<usize> {
    let mut pairs: Vec<(usize, usize, usize)> = Vec::with_capacity(ka * kb);
    for pa in 0..ka {
        for pb in 0..kb {
            let o = overlap[pa * kb + pb];
            if o > 0 {
                pairs.push((o, pa, pb));
            }
        }
    }
    // Ties broken by (pa, pb) so the matching is deterministic.
    pairs.sort_unstable_by(|x, y| (y.0, x.1, x.2).cmp(&(x.0, y.1, y.2)));
    let mut a_used = vec![false; ka];
    let mut mapped = vec![usize::MAX; kb];
    for (_, pa, pb) in pairs {
        if !a_used[pa] && mapped[pb] == usize::MAX {
            a_used[pa] = true;
            mapped[pb] = pa;
        }
    }
    mapped
}

/// Exact maximum-overlap assignment by DP over subsets of `a`'s parts.
/// Requires `ka ≤ EXACT_MATCH_LIMIT`. Returns `mapped[pb] = pa`
/// (`usize::MAX` for unmatched).
fn exact_matching(overlap: &[usize], ka: usize, kb: usize) -> Vec<usize> {
    debug_assert!(ka <= EXACT_MATCH_LIMIT);
    let nmask = 1usize << ka;
    // dp[mask] = max total overlap after assigning b parts 0..i, using
    // exactly the a parts in `mask` for the matched ones (usize::MAX =
    // unreachable state).
    let mut dp = vec![usize::MAX; nmask];
    dp[0] = 0;
    // choice[i][mask] = a part matched to b part i on the best path that
    // *leaves* state `mask` after step i (ka = unmatched).
    let mut choice = vec![vec![u8::MAX; nmask]; kb];
    for (i, ch) in choice.iter_mut().enumerate() {
        let mut next = vec![usize::MAX; nmask];
        for mask in 0..nmask {
            let base = dp[mask];
            if base == usize::MAX {
                continue;
            }
            // Leave b part i unmatched.
            if next[mask] == usize::MAX || base > next[mask] {
                next[mask] = base;
                ch[mask] = ka as u8;
            }
            for pa in 0..ka {
                let bit = 1usize << pa;
                if mask & bit != 0 {
                    continue;
                }
                let v = base + overlap[pa * kb + i];
                let m = mask | bit;
                if next[m] == usize::MAX || v > next[m] {
                    next[m] = v;
                    ch[m] = pa as u8;
                }
            }
        }
        dp = next;
    }
    let mut best_mask = 0;
    for mask in 0..nmask {
        if dp[mask] != usize::MAX && dp[mask] > dp[best_mask] {
            best_mask = mask;
        }
    }
    // Walk the choice table backwards to recover the matching.
    let mut mapped = vec![usize::MAX; kb];
    let mut mask = best_mask;
    for i in (0..kb).rev() {
        let pa = choice[i][mask] as usize;
        if pa < ka {
            mapped[i] = pa;
            mask &= !(1usize << pa);
        }
    }
    mapped
}

/// Complete a matching: unmatched new parts take unused old labels first
/// (never changing the moved count — a maximal matching left them
/// unmatched precisely because their overlap with every free old part is
/// zero), then fresh labels beyond `ka`.
fn complete(mut mapped: Vec<usize>, ka: usize) -> Vec<u32> {
    let mut a_used = vec![false; ka];
    for &m in &mapped {
        if m != usize::MAX {
            a_used[m] = true;
        }
    }
    let mut free = (0..ka).filter(|&pa| !a_used[pa]);
    let mut next_fresh = ka;
    for m in mapped.iter_mut() {
        if *m == usize::MAX {
            *m = free.next().unwrap_or_else(|| {
                let f = next_fresh;
                next_fresh += 1;
                f
            });
        }
    }
    mapped.into_iter().map(|m| m as u32).collect()
}

/// Match `b`'s part labels onto `a`'s by maximum element overlap.
///
/// Returns `labels[pb]` = the old label new part `pb` should adopt.
/// Labels are a permutation of `0..max(ka, kb)` extended with fresh
/// labels when `kb > ka`. Exact (optimal) when
/// `min(ka, kb) ≤ [`EXACT_MATCH_LIMIT`]`, greedy otherwise — the greedy
/// heuristic can over-count migration (see the module tests for a pinned
/// case).
pub fn match_labels(a: &Partition, b: &Partition) -> Result<Vec<u32>, MigrationError> {
    check_sizes(a, b)?;
    let (ka, kb) = (a.nparts(), b.nparts());
    let overlap = overlap_matrix(a, b);
    let mapped = if ka <= EXACT_MATCH_LIMIT {
        exact_matching(&overlap, ka, kb)
    } else if kb <= EXACT_MATCH_LIMIT {
        // Transpose so the DP subsets range over the smaller side.
        let mut t = vec![0usize; kb * ka];
        for pa in 0..ka {
            for pb in 0..kb {
                t[pb * ka + pa] = overlap[pa * kb + pb];
            }
        }
        let back = exact_matching(&t, kb, ka);
        // `back[pa] = pb`; invert to `mapped[pb] = pa`.
        let mut mapped = vec![usize::MAX; kb];
        for (pa, &pb) in back.iter().enumerate() {
            if pb != usize::MAX {
                mapped[pb] = pa;
            }
        }
        mapped
    } else {
        greedy_matching(&overlap, ka, kb)
    };
    Ok(complete(mapped, ka))
}

/// Migration volume under the best matching of `b`'s part labels onto
/// `a`'s ([`match_labels`]): the number of elements that change owner
/// after relabelling. This is the number an element-migration layer
/// would actually ship, since rank labels are arbitrary.
pub fn matched_migration(a: &Partition, b: &Partition) -> Result<usize, MigrationError> {
    let labels = match_labels(a, b)?;
    Ok(a.assignment()
        .iter()
        .zip(b.assignment())
        .filter(|(x, y)| **x != labels[**y as usize])
        .count())
}

/// Fraction of elements migrating (matched), in `[0, 1]`.
pub fn migration_fraction(a: &Partition, b: &Partition) -> Result<f64, MigrationError> {
    Ok(matched_migration(a, b)? as f64 / a.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_and_relabeled_partitions_do_not_migrate() {
        let p = Partition::new(3, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(raw_migration(&p, &p).unwrap(), 0);
        assert_eq!(matched_migration(&p, &p).unwrap(), 0);
        let a = Partition::new(2, vec![0, 0, 1, 1]);
        let b = Partition::new(2, vec![1, 1, 0, 0]);
        assert_eq!(raw_migration(&a, &b).unwrap(), 4);
        assert_eq!(matched_migration(&a, &b).unwrap(), 0);
    }

    #[test]
    fn size_mismatch_is_a_typed_error() {
        let a = Partition::new(2, vec![0, 1]);
        let b = Partition::new(2, vec![0, 1, 1]);
        let e = MigrationError::SizeMismatch { left: 2, right: 3 };
        assert_eq!(raw_migration(&a, &b), Err(e));
        assert_eq!(matched_migration(&a, &b), Err(e));
        assert_eq!(match_labels(&a, &b), Err(e));
        assert_eq!(migration_fraction(&a, &b), Err(e));
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }

    /// The pinned greedy-over-count case: overlap matrix
    /// `[[10, 9], [9, 0]]`. Greedy pairs (0,0) first (overlap 10) and
    /// strands both 9s, shipping 18 of 28 elements; the optimal matching
    /// pairs (0↦1, 1↦0) and ships only 10.
    fn greedy_trap() -> (Partition, Partition) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..10 {
            a.push(0);
            b.push(0);
        }
        for _ in 0..9 {
            a.push(0);
            b.push(1);
        }
        for _ in 0..9 {
            a.push(1);
            b.push(0);
        }
        (Partition::new(2, a), Partition::new(2, b))
    }

    #[test]
    fn exact_matching_beats_greedy_on_the_pinned_case() {
        let (a, b) = greedy_trap();
        let overlap = overlap_matrix(&a, &b);
        let greedy = complete(greedy_matching(&overlap, 2, 2), 2);
        let moved_greedy = a
            .assignment()
            .iter()
            .zip(b.assignment())
            .filter(|(x, y)| **x != greedy[**y as usize])
            .count();
        assert_eq!(moved_greedy, 18, "greedy strands both off-diagonal 9s");
        // The public API (part counts ≤ EXACT_MATCH_LIMIT) is exact.
        assert_eq!(matched_migration(&a, &b).unwrap(), 10);
        assert_eq!(match_labels(&a, &b).unwrap(), vec![1, 0]);
    }

    #[test]
    fn exact_matches_greedy_when_greedy_is_optimal() {
        let a = Partition::new(2, vec![0, 0, 1, 1]);
        let b = Partition::new(4, vec![0, 1, 2, 3]);
        // Best matching keeps 2 elements in place; fresh labels for the
        // two unmatched new parts stay within 0..4 after completion.
        assert_eq!(matched_migration(&a, &b).unwrap(), 2);
        let labels = match_labels(&a, &b).unwrap();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn transposed_exact_path_when_only_b_is_small() {
        // ka = 14 (> limit), kb = 2 (≤ limit): the transposed DP runs.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for pa in 0..14u32 {
            for _ in 0..2 {
                a.push(pa);
                b.push(if pa < 7 { 0 } else { 1 });
            }
        }
        let (a, b) = (Partition::new(14, a), Partition::new(2, b));
        // New part 0 overlaps old parts 0..7 equally (2 each): any one
        // match keeps 2 elements; 28 - 2 - 2 move.
        assert_eq!(matched_migration(&a, &b).unwrap(), 24);
    }

    #[test]
    fn completion_reuses_free_old_labels() {
        // Old has 3 parts, new has 3, but new part 2 overlaps nothing
        // that part 2 owned — still gets a label in 0..3.
        let a = Partition::new(3, vec![0, 0, 1, 1, 2, 2]);
        let b = Partition::new(3, vec![0, 0, 1, 1, 1, 2]);
        let labels = match_labels(&a, &b).unwrap();
        assert!(labels.iter().all(|&l| l < 3));
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn large_part_counts_fall_back_to_greedy() {
        // Both sides above the limit: the greedy path must still produce
        // a valid, deterministic relabelling.
        let k = 16;
        let n = 64;
        let a: Vec<u32> = (0..n).map(|e| (e % k) as u32).collect();
        let mut bv = a.clone();
        bv.rotate_left(1);
        let (a, b) = (Partition::new(k, a), Partition::new(k, bv));
        let m1 = matched_migration(&a, &b).unwrap();
        let m2 = matched_migration(&a, &b).unwrap();
        assert_eq!(m1, m2);
        assert!(m1 <= n);
    }
}
