//! Partition quality metrics — the quantities of the paper's Table 2.
//!
//! * `edgecut` — "the number of graph edges that straddle all sub-graphs"
//!   (a count; the weighted variant is also provided).
//! * total communication volume — the paper follows METIS: "the number of
//!   vertices whose edges are cut by the partition"; the SEAM-calibrated
//!   byte volume is derived from cut edge *weights* (points exchanged).
//! * load balance, Eq. (1): `LB(S) = (max{S} − avg{S}) / max{S}`.

use crate::csr::CsrGraph;
use crate::marker::Marker;
use crate::partition::Partition;

/// The paper's load-balance measure, Eq. (1):
/// `LB(S) = (max{S} − avg{S}) / max{S}`.
///
/// Returns 0 for empty input or all-zero values (a degenerate but
/// well-defined case: nothing is imbalanced when there is no load).
pub fn load_balance(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let max = *values.iter().max().unwrap();
    if max == 0 {
        return 0.0;
    }
    let avg = values.iter().sum::<u64>() as f64 / values.len() as f64;
    (max as f64 - avg) / max as f64
}

/// Eq. (1) load balance over real-valued per-part loads (the
/// time-varying-weight analogue of [`load_balance`]). Non-finite or
/// non-positive maxima degenerate to 0, matching the integer variant.
pub fn load_balance_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let max = values
        .iter()
        .cloned()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);
    if max <= 0.0 {
        return 0.0;
    }
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    (max - avg) / max
}

/// Per-part sums of real-valued element weights (the load each part
/// carries at one instant of a weight trajectory).
pub fn part_loads(p: &Partition, weights: &[f64]) -> Vec<f64> {
    let mut loads = vec![0.0f64; p.nparts()];
    for (e, &part) in p.assignment().iter().enumerate() {
        loads[part as usize] += weights[e];
    }
    loads
}

/// Number of edges cut by the partition (each undirected edge counted
/// once) — the paper's `edgecut`.
pub fn edgecut(g: &CsrGraph, p: &Partition) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.nv() {
        let pv = p.part_of(v);
        for (n, _) in g.neighbors(v) {
            if n > v && p.part_of(n) != pv {
                cut += 1;
            }
        }
    }
    cut
}

/// Total weight of cut edges (points exchanged per step, each undirected
/// edge counted once).
pub fn edgecut_weight(g: &CsrGraph, p: &Partition) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.nv() {
        let pv = p.part_of(v);
        for (n, w) in g.neighbors(v) {
            if n > v && p.part_of(n) != pv {
                cut += w as u64;
            }
        }
    }
    cut
}

/// METIS-style total communication volume: the number of boundary
/// vertices, counted once per *distinct remote part* they touch
/// (a vertex adjacent to two remote parts must be sent twice).
pub fn metis_volume(g: &CsrGraph, p: &Partition) -> u64 {
    let mut vol = 0u64;
    // Epoch-stamped distinct-part set, reused across all vertices: O(deg)
    // per vertex instead of the O(deg · parts-touched) of a linear scan.
    let mut seen = Marker::new(p.nparts());
    for v in 0..g.nv() {
        let pv = p.part_of(v);
        seen.clear();
        for (n, _) in g.neighbors(v) {
            let pn = p.part_of(n);
            if pn != pv && seen.mark(pn) {
                vol += 1;
            }
        }
    }
    vol
}

/// Points each part *sends* per step: for part `p`, the sum of cut-edge
/// weights incident to its vertices (the paper's per-processor
/// communication volume, `spcv`, in points).
pub fn send_points_per_part(g: &CsrGraph, p: &Partition) -> Vec<u64> {
    let mut send = vec![0u64; p.nparts()];
    for v in 0..g.nv() {
        let pv = p.part_of(v);
        for (n, w) in g.neighbors(v) {
            if p.part_of(n) != pv {
                send[pv] += w as u64;
            }
        }
    }
    send
}

/// Number of distinct neighbouring parts of each part (message count per
/// step when exchanges are aggregated per neighbour pair, as SEAM does).
pub fn neighbor_parts(g: &CsrGraph, p: &Partition) -> Vec<usize> {
    let k = p.nparts();
    // Group vertices by owning part (counting sort) so each part's
    // distinct-neighbour set is one epoch of a single stamped marker,
    // instead of a per-part Vec with an O(parts-touched) contains scan.
    let mut offsets = vec![0usize; k + 1];
    for v in 0..g.nv() {
        offsets[p.part_of(v) + 1] += 1;
    }
    for i in 0..k {
        offsets[i + 1] += offsets[i];
    }
    let mut members = vec![0u32; g.nv()];
    let mut cursor = offsets.clone();
    for v in 0..g.nv() {
        let pv = p.part_of(v);
        members[cursor[pv]] = v as u32;
        cursor[pv] += 1;
    }
    let mut seen = Marker::new(k);
    let mut counts = vec![0usize; k];
    for pv in 0..k {
        seen.clear();
        for &v in &members[offsets[pv]..offsets[pv + 1]] {
            for (n, _) in g.neighbors(v as usize) {
                let pn = p.part_of(n);
                if pn != pv && seen.mark(pn) {
                    counts[pv] += 1;
                }
            }
        }
    }
    counts
}

/// Bytes sent from part `a` to part `b` per step, for every ordered
/// adjacent pair, as a sparse list `(from, to, points)`.
pub fn part_exchange_points(g: &CsrGraph, p: &Partition) -> Vec<(u32, u32, u64)> {
    use std::collections::HashMap;
    let mut map: HashMap<(u32, u32), u64> = HashMap::new();
    for v in 0..g.nv() {
        let pv = p.part_of(v) as u32;
        for (n, w) in g.neighbors(v) {
            let pn = p.part_of(n) as u32;
            if pn != pv {
                *map.entry((pv, pn)).or_default() += w as u64;
            }
        }
    }
    let mut out: Vec<_> = map.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    out.sort_unstable();
    out
}

/// A bundle of the Table 2 statistics for one partition.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionStats {
    /// Per-part element (vertex) counts — `nelemd`.
    pub nelemd: Vec<u64>,
    /// `LB(nelemd)` (Eq. 1).
    pub lb_nelemd: f64,
    /// Per-part send volume in points — `spcv`.
    pub spcv: Vec<u64>,
    /// `LB(spcv)` (Eq. 1).
    pub lb_spcv: f64,
    /// Total communication volume in points (sum of `spcv`).
    pub total_points: u64,
    /// Edgecut (count of cut edges).
    pub edgecut: u64,
    /// METIS-definition communication volume (boundary-vertex count,
    /// weighted by distinct remote parts).
    pub metis_volume: u64,
}

/// Compute the full statistics bundle.
pub fn partition_stats(g: &CsrGraph, p: &Partition) -> PartitionStats {
    let nelemd = p.part_weights(g);
    let spcv = send_points_per_part(g, p);
    let total_points = spcv.iter().sum();
    PartitionStats {
        lb_nelemd: load_balance(&nelemd),
        lb_spcv: load_balance(&spcv),
        nelemd,
        total_points,
        spcv,
        edgecut: edgecut(g, p),
        metis_volume: metis_volume(g, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    /// A 2×2 grid graph (4-cycle) with unit weights.
    fn cycle4() -> CsrGraph {
        CsrGraph::from_lists(&[
            vec![(1, 1), (3, 1)],
            vec![(0, 1), (2, 1)],
            vec![(1, 1), (3, 1)],
            vec![(2, 1), (0, 1)],
        ])
        .unwrap()
    }

    #[test]
    fn eq1_load_balance() {
        // LB({2, 2}) = 0; LB({3, 1}) = (3 - 2)/3.
        assert_eq!(load_balance(&[2, 2]), 0.0);
        assert!((load_balance(&[3, 1]) - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(load_balance(&[]), 0.0);
        assert_eq!(load_balance(&[0, 0]), 0.0);
        // Empty parts count toward the average: LB({2, 0}) = 0.5.
        assert!((load_balance(&[2, 0]) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn edgecut_on_cycle() {
        let g = cycle4();
        // Split {0,1} vs {2,3}: cuts edges (1,2) and (3,0).
        let p = Partition::new(2, vec![0, 0, 1, 1]);
        assert_eq!(edgecut(&g, &p), 2);
        assert_eq!(edgecut_weight(&g, &p), 2);
        // One vertex alone cuts 2 edges.
        let p = Partition::new(2, vec![1, 0, 0, 0]);
        assert_eq!(edgecut(&g, &p), 2);
    }

    #[test]
    fn metis_volume_counts_distinct_remote_parts() {
        let g = cycle4();
        // Three parts: vertex 0 alone, vertex 2 alone, {1,3} together.
        let p = Partition::new(3, vec![0, 1, 2, 1]);
        // v0 touches parts {1}, ×2 edges -> 1; v1 touches {0, 2} -> 2;
        // v2 touches {1} -> 1; v3 touches {0, 2} -> 2. Total 6.
        assert_eq!(metis_volume(&g, &p), 6);
    }

    #[test]
    fn send_points_symmetric_for_balanced_cut() {
        let g = cycle4();
        let p = Partition::new(2, vec![0, 0, 1, 1]);
        assert_eq!(send_points_per_part(&g, &p), vec![2, 2]);
    }

    #[test]
    fn exchange_points_are_pairwise_symmetric() {
        let g = cycle4();
        let p = Partition::new(2, vec![0, 1, 0, 1]);
        let ex = part_exchange_points(&g, &p);
        // Every edge is cut: each direction carries 4 points.
        assert_eq!(ex, vec![(0, 1, 4), (1, 0, 4)]);
    }

    #[test]
    fn neighbor_parts_counts() {
        let g = cycle4();
        let p = Partition::new(2, vec![0, 0, 1, 1]);
        assert_eq!(neighbor_parts(&g, &p), vec![1, 1]);
        let p3 = Partition::new(3, vec![0, 1, 2, 1]);
        assert_eq!(neighbor_parts(&g, &p3), vec![1, 2, 1]);
    }

    #[test]
    fn stats_bundle_consistency() {
        let g = cycle4();
        let p = Partition::new(2, vec![0, 0, 1, 1]);
        let s = partition_stats(&g, &p);
        assert_eq!(s.nelemd, vec![2, 2]);
        assert_eq!(s.lb_nelemd, 0.0);
        assert_eq!(s.edgecut, 2);
        assert_eq!(s.total_points, 4); // 2 cut edges × 2 directions
        assert_eq!(s.spcv, vec![2, 2]);
        assert_eq!(s.lb_spcv, 0.0);
    }

    #[test]
    fn weighted_edges_affect_points_not_count() {
        let g = CsrGraph::from_lists(&[vec![(1, 8)], vec![(0, 8), (2, 1)], vec![(1, 1)]]).unwrap();
        let p = Partition::new(2, vec![0, 1, 1]);
        assert_eq!(edgecut(&g, &p), 1);
        assert_eq!(edgecut_weight(&g, &p), 8);
        assert_eq!(send_points_per_part(&g, &p), vec![8, 8]);
    }
}
