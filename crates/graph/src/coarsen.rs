//! Multilevel coarsening via heavy-edge matching (Karypis & Kumar).
//!
//! Coarsening collapses a maximal matching of the graph; heavy-edge
//! matching prefers the heaviest incident edge so that large edge weights
//! are hidden inside coarse vertices and the coarse graph's total exposed
//! edge weight shrinks quickly.

use crate::csr::CsrGraph;
use crate::rng::SplitMix64;

/// One coarsening level: the coarse graph and the projection map.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse graph.
    pub graph: CsrGraph,
    /// `cmap[fine_vertex] = coarse_vertex` into `graph`.
    pub cmap: Vec<u32>,
}

/// Compute a heavy-edge matching: `mate[v]` is `v`'s partner, or `v`
/// itself if unmatched. Vertices are visited in random order; each
/// unmatched vertex grabs its heaviest unmatched neighbour.
pub fn heavy_edge_matching(g: &CsrGraph, rng: &mut SplitMix64) -> Vec<u32> {
    let nv = g.nv();
    let mut mate: Vec<u32> = (0..nv as u32).collect();
    let mut matched = vec![false; nv];
    for &v in &rng.permutation(nv) {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        let mut best: Option<(u32, usize)> = None; // (weight, neighbor)
        for (n, w) in g.neighbors(v) {
            if !matched[n] && best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, n));
            }
        }
        if let Some((_, n)) = best {
            mate[v] = n as u32;
            mate[n] = v as u32;
            matched[v] = true;
            matched[n] = true;
        }
    }
    mate
}

/// Collapse a matching into a coarse graph.
pub fn contract(g: &CsrGraph, mate: &[u32]) -> CoarseLevel {
    let nv = g.nv();
    // Assign coarse ids in order of first appearance.
    let mut cmap = vec![u32::MAX; nv];
    let mut nc = 0u32;
    for v in 0..nv {
        if cmap[v] == u32::MAX {
            cmap[v] = nc;
            cmap[mate[v] as usize] = nc;
            nc += 1;
        }
    }
    let ncs = nc as usize;

    let mut xadj = Vec::with_capacity(ncs + 1);
    let mut adjncy: Vec<u32> = Vec::new();
    let mut adjwgt: Vec<u32> = Vec::new();
    let mut vwgt = vec![0u32; ncs];
    // Scratch accumulator: position of coarse neighbour in the current row.
    let mut pos = vec![u32::MAX; ncs];
    xadj.push(0u32);

    let mut members: Vec<Vec<u32>> = vec![Vec::new(); ncs];
    for v in 0..nv {
        members[cmap[v] as usize].push(v as u32);
    }

    for (c, mem) in members.iter().enumerate() {
        let row_start = adjncy.len();
        for &v in mem {
            vwgt[c] += g.vwgt[v as usize];
            for (n, w) in g.neighbors(v as usize) {
                let cn = cmap[n];
                if cn as usize == c {
                    continue; // internal edge disappears
                }
                if pos[cn as usize] == u32::MAX {
                    pos[cn as usize] = adjncy.len() as u32;
                    adjncy.push(cn);
                    adjwgt.push(w);
                } else {
                    adjwgt[pos[cn as usize] as usize] += w;
                }
            }
        }
        for &n in &adjncy[row_start..] {
            pos[n as usize] = u32::MAX;
        }
        xadj.push(adjncy.len() as u32);
    }

    CoarseLevel {
        graph: CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        },
        cmap,
    }
}

/// Coarsen repeatedly until at most `coarsen_to` vertices remain or the
/// graph stops shrinking. Returns the hierarchy, coarsest last; empty if
/// the input is already small enough.
pub fn coarsen(g: &CsrGraph, coarsen_to: usize, rng: &mut SplitMix64) -> Vec<CoarseLevel> {
    let _span = cubesfc_obs::span("coarsen");
    let mut levels: Vec<CoarseLevel> = Vec::new();
    loop {
        let current = levels.last().map(|l| &l.graph).unwrap_or(g);
        if current.nv() <= coarsen_to {
            break;
        }
        let mate = {
            let _span = cubesfc_obs::span("match");
            heavy_edge_matching(current, rng)
        };
        let level = {
            let _span = cubesfc_obs::span("contract");
            contract(current, &mate)
        };
        // Insufficient shrinkage (graph too star-like to match): stop.
        if level.graph.nv() as f64 > current.nv() as f64 * 0.95 {
            break;
        }
        levels.push(level);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of n vertices, unit weights.
    fn ring(n: usize) -> CsrGraph {
        let lists: Vec<Vec<(u32, u32)>> = (0..n)
            .map(|v| vec![(((v + n - 1) % n) as u32, 1), (((v + 1) % n) as u32, 1)])
            .collect();
        CsrGraph::from_lists(&lists).unwrap()
    }

    #[test]
    fn matching_is_consistent() {
        let g = ring(10);
        let mut rng = SplitMix64::new(1);
        let mate = heavy_edge_matching(&g, &mut rng);
        for v in 0..10 {
            let m = mate[v] as usize;
            assert_eq!(mate[m] as usize, v, "mate is not an involution");
            if m != v {
                assert!(g.neighbors(v).any(|(n, _)| n == m), "mate not a neighbor");
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Triangle with one heavy edge (0-1, weight 9). Whenever vertex 0
        // or 1 is visited first (2 of 3 orders), the heavy edge must be
        // matched; over many seeds, that dominates.
        let g = CsrGraph::from_lists(&[
            vec![(1, 9), (2, 1)],
            vec![(0, 9), (2, 1)],
            vec![(0, 1), (1, 1)],
        ])
        .unwrap();
        let mut heavy_matched = 0;
        for seed in 0..30 {
            let mut rng = SplitMix64::new(seed);
            let mate = heavy_edge_matching(&g, &mut rng);
            if mate[0] == 1 {
                assert_eq!(mate[1], 0);
                heavy_matched += 1;
            }
        }
        assert!(heavy_matched >= 15, "heavy edge matched {heavy_matched}/30");
    }

    #[test]
    fn contraction_preserves_total_vertex_weight() {
        let g = ring(12);
        let mut rng = SplitMix64::new(2);
        let mate = heavy_edge_matching(&g, &mut rng);
        let lvl = contract(&g, &mate);
        assert_eq!(lvl.graph.total_vwgt(), g.total_vwgt());
        lvl.graph.validate().unwrap();
    }

    #[test]
    fn contraction_accumulates_parallel_edges() {
        // Square 0-1-2-3 with both 0-1 and 2-3 matched: coarse graph is two
        // vertices joined by the two cross edges, combined weight 2.
        let g = ring(4);
        let mate = vec![1, 0, 3, 2];
        let lvl = contract(&g, &mate);
        assert_eq!(lvl.graph.nv(), 2);
        assert_eq!(lvl.graph.ne(), 1);
        assert_eq!(lvl.graph.adjwgt, vec![2, 2]);
    }

    #[test]
    fn coarsen_reaches_target() {
        let g = ring(128);
        let mut rng = SplitMix64::new(5);
        let levels = coarsen(&g, 16, &mut rng);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.nv() <= 16 || coarsest.nv() as f64 > 0.95 * 128.0);
        // Weight conserved through every level.
        for l in &levels {
            assert_eq!(l.graph.total_vwgt(), g.total_vwgt());
            l.graph.validate().unwrap();
        }
    }

    #[test]
    fn coarsen_noop_for_small_graph() {
        let g = ring(8);
        let mut rng = SplitMix64::new(5);
        assert!(coarsen(&g, 16, &mut rng).is_empty());
    }

    #[test]
    fn cmap_is_total_and_in_range() {
        let g = ring(30);
        let mut rng = SplitMix64::new(9);
        let mate = heavy_edge_matching(&g, &mut rng);
        let lvl = contract(&g, &mate);
        for &c in &lvl.cmap {
            assert!((c as usize) < lvl.graph.nv());
        }
    }
}
