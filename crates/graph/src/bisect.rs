//! Multilevel bisection and the recursive-bisection (RB) driver —
//! METIS's `PartGraphRecursive` analogue.
//!
//! "The recursive bisection (RB) algorithm is best for load balancing,
//! but results in larger edgecuts and total communication volume"
//! (paper §2).

use crate::coarsen::coarsen;
use crate::csr::CsrGraph;
use crate::fm::{fm_refine, BisectTargets};
use crate::initial::greedy_graph_growing;
use crate::partition::{Partition, PartitionConfig};
use crate::rng::SplitMix64;

/// Multilevel 2-way partition of `g` with part-0 weight target
/// `t0 = round(frac0 × total)`.
///
/// Coarsens to ~`cfg.coarsen_to` vertices, bisects the coarsest graph by
/// greedy growing, then projects back up with FM refinement per level.
pub fn multilevel_bisect(
    g: &CsrGraph,
    frac0: f64,
    cfg: &PartitionConfig,
    rng: &mut SplitMix64,
) -> Vec<u32> {
    let total = g.total_vwgt();
    let t0 = ((total as f64) * frac0).round() as u64;
    let t1 = total - t0.min(total);

    let levels = coarsen(g, cfg.coarsen_to.max(32), rng);
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(g);

    let targets = BisectTargets::with_ub(t0, t1, cfg.ub_factor, coarsest.max_vwgt());
    let mut parts = greedy_graph_growing(coarsest, &targets, cfg.init_tries, rng);
    fm_refine(coarsest, &mut parts, &targets, cfg.refine_passes);

    // Uncoarsen: project through each level, refining as we go.
    for li in (0..levels.len()).rev() {
        let fine_graph = if li == 0 { g } else { &levels[li - 1].graph };
        let cmap = &levels[li].cmap;
        let mut fine_parts = vec![0u32; fine_graph.nv()];
        for (v, &c) in cmap.iter().enumerate() {
            fine_parts[v] = parts[c as usize];
        }
        let targets = BisectTargets::with_ub(t0, t1, cfg.ub_factor, fine_graph.max_vwgt());
        fm_refine(fine_graph, &mut fine_parts, &targets, cfg.refine_passes);
        parts = fine_parts;
    }
    parts
}

/// Below this many vertices a sub-bisection is not worth a fork: the
/// subgraph extraction + multilevel solve is microseconds-scale and the
/// join overhead would dominate.
const RB_PARALLEL_MIN_VERTS: usize = 192;

/// Recursive bisection into `cfg.nparts` parts.
///
/// At each step the remaining part range `[lo, hi)` is split as evenly as
/// possible (`⌊k/2⌋` vs `⌈k/2⌉`) with the part-0 weight fraction matching
/// the part-count split, so non-power-of-two part counts are handled.
///
/// The two sub-bisections of each step are independent, so they recurse
/// as parallel `rayon::join` jobs (the job-level parallelism METIS itself
/// exploits in recursive bisection). Every branch seeds its RNG from its
/// position in the bisection tree — not from whatever its siblings drew —
/// so the result is **bit-identical** to [`recursive_bisection_serial`]
/// no matter how many worker threads run.
pub fn recursive_bisection(g: &CsrGraph, cfg: &PartitionConfig) -> Partition {
    rb_partition(g, cfg, true)
}

/// [`recursive_bisection`] with the parallel recursion disabled — same
/// partition, one thread. Exists so tests (and scaling benchmarks) can
/// prove the parallel path is bit-identical.
pub fn recursive_bisection_serial(g: &CsrGraph, cfg: &PartitionConfig) -> Partition {
    rb_partition(g, cfg, false)
}

fn rb_partition(g: &CsrGraph, cfg: &PartitionConfig, parallel: bool) -> Partition {
    let _span = cubesfc_obs::span("rb");
    assert!(cfg.nparts >= 1, "nparts must be positive");
    let all: Vec<u32> = (0..g.nv() as u32).collect();
    let mut assign = vec![0u32; g.nv()];
    for (v, p) in rb_recurse(g, &all, 0, cfg.nparts, cfg, 1, parallel) {
        assign[v as usize] = p;
    }
    // Per-level slack can still stack through ~log2(k) levels; enforce the
    // *global* tolerance at the end, as METIS does.
    let target = g.total_vwgt() / cfg.nparts as u64;
    let cap = crate::partition::weight_cap(target, cfg.ub_factor, g.max_vwgt());
    let mut weights = vec![0u64; cfg.nparts];
    for (v, &p) in assign.iter().enumerate() {
        weights[p as usize] += g.vwgt[v] as u64;
    }
    crate::kway::rebalance_kway(g, &mut assign, &mut weights, cap);
    Partition::new(cfg.nparts, assign)
}

/// The RNG of one bisection-tree node, derived from the node's root-path
/// (`1` for the root, `path·2 + branch` for children). Sibling subtrees
/// draw from disjoint streams, which is what makes the parallel
/// recursion order-independent.
fn branch_rng(seed: u64, path: u64) -> SplitMix64 {
    let mut mixer = SplitMix64::new(seed ^ path.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let derived = mixer.next_u64();
    SplitMix64::new(derived)
}

/// Bisect `verts` into parts `[lo, lo + k)`; returns `(vertex, part)`
/// assignments. Pure in `(g, verts, lo, k, cfg, path)` — execution
/// interleaving cannot change the result.
fn rb_recurse(
    g: &CsrGraph,
    verts: &[u32],
    lo: usize,
    k: usize,
    cfg: &PartitionConfig,
    path: u64,
    parallel: bool,
) -> Vec<(u32, u32)> {
    if k == 1 || verts.is_empty() {
        // Degenerate recursion: fewer vertices than parts leaves the
        // remaining parts empty (possible when k approaches n, as in the
        // paper's one-element-per-processor runs).
        return verts.iter().map(|&v| (v, lo as u32)).collect();
    }
    let (sub, map) = g.subgraph(verts);
    let k0 = k / 2;
    let frac0 = k0 as f64 / k as f64;
    // Per-level balance must be tight: deviations compound multiplicatively
    // through ~log2(k) levels, and RB is "best for load balancing" in the
    // paper precisely because each bisection is held close to its target.
    // weight_cap still allows +max_vwgt slack, so refinement never jams.
    let level_cfg = PartitionConfig {
        ub_factor: cfg.ub_factor.min(1.001),
        ..*cfg
    };
    let mut rng = branch_rng(cfg.seed, path);
    let parts = multilevel_bisect(&sub, frac0, &level_cfg, &mut rng);

    let mut side0 = Vec::new();
    let mut side1 = Vec::new();
    for (l, &p) in parts.iter().enumerate() {
        if p == 0 {
            side0.push(map[l]);
        } else {
            side1.push(map[l]);
        }
    }
    let recurse0 = || rb_recurse(g, &side0, lo, k0, cfg, path << 1, parallel);
    let recurse1 = || rb_recurse(g, &side1, lo + k0, k - k0, cfg, (path << 1) | 1, parallel);
    let (mut r0, r1) = if parallel && verts.len() >= RB_PARALLEL_MIN_VERTS && k >= 4 {
        rayon::join(recurse0, recurse1)
    } else {
        (recurse0(), recurse1())
    };
    r0.extend(r1);
    r0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edgecut, load_balance};

    fn grid(w: usize, h: usize) -> CsrGraph {
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let mut lists = vec![Vec::new(); w * h];
        for y in 0..h {
            for x in 0..w {
                let mut l = Vec::new();
                if x > 0 {
                    l.push((idx(x - 1, y), 1));
                }
                if x + 1 < w {
                    l.push((idx(x + 1, y), 1));
                }
                if y > 0 {
                    l.push((idx(x, y - 1), 1));
                }
                if y + 1 < h {
                    l.push((idx(x, y + 1), 1));
                }
                lists[idx(x, y) as usize] = l;
            }
        }
        CsrGraph::from_lists(&lists).unwrap()
    }

    #[test]
    fn rb_4way_on_grid_is_balanced_and_cheap() {
        let g = grid(8, 8);
        let p = recursive_bisection(&g, &PartitionConfig::new(4));
        assert_eq!(p.nonempty_parts(), 4);
        let lb = load_balance(&p.part_weights(&g));
        assert!(lb < 0.12, "lb = {lb}");
        let cut = edgecut(&g, &p);
        // Optimal 4-way on 8×8 is 16 (two straight lines); allow slack.
        assert!(cut <= 28, "cut = {cut}");
    }

    #[test]
    fn rb_handles_non_power_of_two() {
        let g = grid(9, 9); // 81 vertices
        let p = recursive_bisection(&g, &PartitionConfig::new(3));
        assert_eq!(p.nonempty_parts(), 3);
        let w = p.part_weights(&g);
        assert!(load_balance(&w) < 0.15, "weights = {w:?}");
    }

    #[test]
    fn rb_single_part_is_trivial() {
        let g = grid(4, 4);
        let p = recursive_bisection(&g, &PartitionConfig::new(1));
        assert!(p.assignment().iter().all(|&x| x == 0));
    }

    #[test]
    fn rb_k_equals_n_assigns_singletons_mostly() {
        // 16 vertices into 16 parts: every part has 0, 1, or 2 vertices
        // (imbalance allowed by the +max_vwgt slack).
        let g = grid(4, 4);
        let p = recursive_bisection(&g, &PartitionConfig::new(16));
        let sizes = p.part_sizes();
        assert!(sizes.iter().all(|&s| s <= 2), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 16);
    }

    #[test]
    fn rb_parallel_is_bit_identical_to_serial() {
        // Big enough that the top levels really fork (576 ≥ threshold),
        // across several seeds and part counts including a non-power-of-2.
        let g = grid(24, 24);
        for seed in [1u64, 42, 0xD15EA5E] {
            for k in [4usize, 6, 16] {
                let cfg = PartitionConfig::new(k).with_seed(seed);
                let par = recursive_bisection(&g, &cfg);
                let ser = recursive_bisection_serial(&g, &cfg);
                assert_eq!(
                    par.assignment(),
                    ser.assignment(),
                    "seed={seed} k={k}: parallel RB diverged from serial"
                );
            }
        }
    }

    #[test]
    fn rb_is_deterministic_for_seed() {
        let g = grid(6, 6);
        let a = recursive_bisection(&g, &PartitionConfig::new(4).with_seed(1));
        let b = recursive_bisection(&g, &PartitionConfig::new(4).with_seed(1));
        assert_eq!(a, b);
    }

    #[test]
    fn multilevel_bisect_large_ring() {
        // 512-vertex ring: forces several coarsening levels; best cut is 2.
        let lists: Vec<Vec<(u32, u32)>> = (0..512)
            .map(|v| vec![(((v + 511) % 512) as u32, 1), (((v + 1) % 512) as u32, 1)])
            .collect();
        let g = CsrGraph::from_lists(&lists).unwrap();
        let cfg = PartitionConfig::new(2);
        let mut rng = SplitMix64::new(3);
        let parts = multilevel_bisect(&g, 0.5, &cfg, &mut rng);
        let cut = crate::fm::cut_weight_2way(&g, &parts);
        assert!(cut <= 6, "ring cut = {cut}");
        let w0 = parts.iter().filter(|&&p| p == 0).count();
        assert!((236..=276).contains(&w0), "w0 = {w0}");
    }
}
