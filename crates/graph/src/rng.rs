//! A tiny deterministic RNG (SplitMix64).
//!
//! The partitioner's randomized pieces (matching order, region-growing
//! seeds) need reproducibility across runs and platforms; a self-contained
//! SplitMix64 keeps the whole partitioning pipeline bit-stable for a given
//! seed without an external dependency.

/// SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create with a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// A shuffled `0..n` permutation.
    pub fn permutation(&mut self, n: usize) -> Vec<u32> {
        let mut p: Vec<u32> = (0..n as u32).collect();
        self.shuffle(&mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let p = r.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50u32).collect::<Vec<_>>());
    }

    #[test]
    fn values_are_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.below(4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
