//! Direct multilevel K-way partitioning — METIS's `PartGraphKway`
//! analogue.
//!
//! "The K-way (KWAY) algorithm generates partitions that minimize
//! edgecuts but may result in sub-optimal load balance" (paper §2). The
//! sub-optimal balance is intrinsic: the greedy refinement will trade a
//! unit of imbalance (within the tolerance cap) for any positive cut
//! gain, which at O(1) elements per processor means some processors get
//! an extra element — exactly the effect the paper measured against.

use crate::bisect::recursive_bisection;
use crate::coarsen::coarsen;
use crate::csr::CsrGraph;
use crate::partition::{weight_cap, Partition, PartitionConfig};
use crate::rng::SplitMix64;

/// Greedy k-way edgecut refinement, in place. Returns the number of moves.
///
/// For each boundary vertex (in random order), move it to the adjacent
/// part with the largest positive cut gain that respects the weight cap;
/// zero-gain moves are taken when they strictly improve balance.
pub fn kway_refine(
    g: &CsrGraph,
    parts: &mut [u32],
    nparts: usize,
    cap: u64,
    passes: usize,
    rng: &mut SplitMix64,
) -> usize {
    let _span = cubesfc_obs::span("refine");
    let nv = g.nv();
    let mut weights = vec![0u64; nparts];
    for (v, &p) in parts.iter().enumerate() {
        weights[p as usize] += g.vwgt[v] as u64;
    }

    rebalance_kway(g, parts, &mut weights, cap);

    let mut total_moves = 0;
    // Scratch: connection weight of the current vertex to each part.
    let mut conn = vec![0i64; nparts];
    let mut touched: Vec<usize> = Vec::with_capacity(16);

    for _ in 0..passes {
        let mut moves = 0;
        for &vv in &rng.permutation(nv) {
            let v = vv as usize;
            let from = parts[v] as usize;
            touched.clear();
            for (n, w) in g.neighbors(v) {
                let pn = parts[n] as usize;
                if conn[pn] == 0 {
                    touched.push(pn);
                }
                conn[pn] += w as i64;
            }
            let id = conn[from];
            let vw = g.vwgt[v] as u64;
            // Find the best feasible destination.
            let mut best: Option<(i64, usize)> = None;
            for &p in &touched {
                if p == from {
                    continue;
                }
                if weights[p] + vw > cap {
                    continue;
                }
                let gain = conn[p] - id;
                let better = match best {
                    None => gain > 0 || (gain == 0 && weights[p] + vw < weights[from]),
                    Some((bg, bp)) => gain > bg || (gain == bg && weights[p] < weights[bp]),
                };
                if better {
                    best = Some((gain, p));
                }
            }
            for &p in &touched {
                conn[p] = 0;
            }
            if let Some((gain, to)) = best {
                let improves_balance = weights[to] + vw < weights[from];
                if gain > 0 || (gain == 0 && improves_balance) {
                    parts[v] = to as u32;
                    weights[from] -= vw;
                    weights[to] += vw;
                    moves += 1;
                }
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

/// Push every part back under the weight cap (METIS's balancing phase
/// during uncoarsening): repeatedly move the least-damaging vertex out of
/// the most overweight part into the lightest part it can enter.
pub(crate) fn rebalance_kway(g: &CsrGraph, parts: &mut [u32], weights: &mut [u64], cap: u64) {
    let nparts = weights.len();
    let max_iters = 4 * g.nv() + 16;
    for _ in 0..max_iters {
        // The heaviest over-cap part.
        let Some(from) = (0..nparts)
            .filter(|&p| weights[p] > cap)
            .max_by_key(|&p| weights[p])
        else {
            return;
        };
        // Best (vertex, destination): smallest cut damage, then lightest
        // destination.
        let mut best: Option<(i64, u64, usize, usize)> = None;
        for v in 0..g.nv() {
            if parts[v] as usize != from {
                continue;
            }
            let vw = g.vwgt[v] as u64;
            // Gain toward each candidate destination.
            for to in 0..nparts {
                if to == from || weights[to] + vw > cap.min(weights[from] - 1) {
                    // Require the move to strictly reduce the imbalance.
                    continue;
                }
                let mut gain = 0i64;
                for (n, w) in g.neighbors(v) {
                    let pn = parts[n] as usize;
                    if pn == to {
                        gain += w as i64;
                    } else if pn == from {
                        gain -= w as i64;
                    }
                }
                let better = match best {
                    None => true,
                    Some((bg, bw, _, _)) => gain > bg || (gain == bg && weights[to] < bw),
                };
                if better {
                    best = Some((gain, weights[to], v, to));
                }
            }
        }
        let Some((_, _, v, to)) = best else { return };
        let vw = g.vwgt[v] as u64;
        weights[from] -= vw;
        weights[to] += vw;
        parts[v] = to as u32;
    }
}

/// Multilevel K-way driver.
///
/// Coarsens the graph (when it is large relative to `nparts`), computes an
/// initial partition by recursive bisection on the coarsest graph, then
/// uncoarsens with greedy k-way refinement at every level.
pub fn kway(g: &CsrGraph, cfg: &PartitionConfig) -> Partition {
    let _span = cubesfc_obs::span("kway");
    assert!(cfg.nparts >= 1);
    if cfg.nparts == 1 {
        return Partition::new(1, vec![0; g.nv()]);
    }
    let mut rng = SplitMix64::new(cfg.seed ^ 0x4B57_4159); // "KWAY"
    let coarsen_to = cfg.coarsen_to.max(20 * cfg.nparts);
    let levels = coarsen(g, coarsen_to, &mut rng);
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(g);

    // Initial k-way partition of the coarsest graph via RB.
    let init_cfg = PartitionConfig {
        seed: cfg.seed ^ 0x1297,
        ..*cfg
    };
    let mut parts = recursive_bisection(coarsest, &init_cfg)
        .assignment()
        .to_vec();

    let total = g.total_vwgt();
    let target = total / cfg.nparts as u64;

    let cap_for = |graph: &CsrGraph| weight_cap(target, cfg.ub_factor, graph.max_vwgt());

    kway_refine(
        coarsest,
        &mut parts,
        cfg.nparts,
        cap_for(coarsest),
        cfg.refine_passes,
        &mut rng,
    );

    for li in (0..levels.len()).rev() {
        let fine_graph = if li == 0 { g } else { &levels[li - 1].graph };
        let cmap = &levels[li].cmap;
        let mut fine_parts = vec![0u32; fine_graph.nv()];
        for (v, &c) in cmap.iter().enumerate() {
            fine_parts[v] = parts[c as usize];
        }
        kway_refine(
            fine_graph,
            &mut fine_parts,
            cfg.nparts,
            cap_for(fine_graph),
            cfg.refine_passes,
            &mut rng,
        );
        parts = fine_parts;
    }

    Partition::new(cfg.nparts, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edgecut, load_balance};

    fn grid(w: usize, h: usize) -> CsrGraph {
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let mut lists = vec![Vec::new(); w * h];
        for y in 0..h {
            for x in 0..w {
                let mut l = Vec::new();
                if x > 0 {
                    l.push((idx(x - 1, y), 1));
                }
                if x + 1 < w {
                    l.push((idx(x + 1, y), 1));
                }
                if y > 0 {
                    l.push((idx(x, y - 1), 1));
                }
                if y + 1 < h {
                    l.push((idx(x, y + 1), 1));
                }
                lists[idx(x, y) as usize] = l;
            }
        }
        CsrGraph::from_lists(&lists).unwrap()
    }

    #[test]
    fn kway_4_on_grid() {
        let g = grid(8, 8);
        let p = kway(&g, &PartitionConfig::new(4));
        assert_eq!(p.nonempty_parts(), 4);
        let cut = edgecut(&g, &p);
        assert!(cut <= 28, "cut = {cut}");
        assert!(load_balance(&p.part_weights(&g)) <= 0.35);
    }

    #[test]
    fn kway_refine_improves_a_bad_partition() {
        let g = grid(8, 8);
        // Stripe assignment by column parity: terrible cut.
        let mut parts: Vec<u32> = (0..64).map(|v| (v % 2) as u32).collect();
        let before = edgecut(&g, &Partition::new(2, parts.clone()));
        let mut rng = SplitMix64::new(1);
        kway_refine(&g, &mut parts, 2, 36, 8, &mut rng);
        let after = edgecut(&g, &Partition::new(2, parts));
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn kway_respects_cap() {
        let g = grid(6, 6);
        let cfg = PartitionConfig::new(4);
        let p = kway(&g, &cfg);
        let cap = weight_cap(9, cfg.ub_factor, 1);
        assert!(p.part_weights(&g).iter().all(|&w| w <= cap));
    }

    #[test]
    fn kway_one_part() {
        let g = grid(3, 3);
        let p = kway(&g, &PartitionConfig::new(1));
        assert!(p.assignment().iter().all(|&x| x == 0));
    }

    #[test]
    fn kway_k_equals_n_may_leave_imbalance() {
        // The METIS-like behaviour the paper leverages: at one vertex per
        // part the cap is 2, so parts of size 2 (and empty parts) can
        // appear whenever they lower the cut.
        let g = grid(4, 4);
        let p = kway(&g, &PartitionConfig::new(16));
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        assert!(sizes.iter().all(|&s| s <= 2), "{sizes:?}");
    }

    #[test]
    fn kway_is_deterministic_for_seed() {
        let g = grid(6, 6);
        let a = kway(&g, &PartitionConfig::new(5).with_seed(77));
        let b = kway(&g, &PartitionConfig::new(5).with_seed(77));
        assert_eq!(a, b);
    }

    #[test]
    fn kway_large_graph_exercises_coarsening() {
        let g = grid(32, 32); // 1024 vertices, coarsen_to = 80 for k=4
        let cfg = PartitionConfig {
            coarsen_to: 64,
            ..PartitionConfig::new(2)
        };
        let p = kway(&g, &cfg);
        let cut = edgecut(&g, &p);
        assert!(cut <= 64, "cut = {cut}"); // optimal is 32
        assert!(load_balance(&p.part_weights(&g)) < 0.15);
    }
}
