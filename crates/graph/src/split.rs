//! Weighted prefix-sum splitting of a 1-D element order.
//!
//! The space-filling-curve partitioners reduce partitioning to slicing a
//! linear order into contiguous segments. This module holds the order-
//! level splitting primitive: given a visit order (rank → element id)
//! and per-element work weights, place the `nproc - 1` cuts where the
//! running weight crosses `i·W/nproc`, guaranteeing every part at least
//! one element. It lives in the graph crate (below both the mesh and the
//! dynamic-balance layers) so the static partitioner and the incremental
//! rebalancer share one implementation — incremental re-splits are just
//! this function on the *same* order with new weights, which is what
//! keeps successive cuts nested and migration volumes low.

use crate::partition::Partition;
use std::fmt;

/// Errors from [`split_order_weighted`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitError {
    /// Zero parts requested.
    ZeroParts,
    /// More parts than elements.
    TooManyParts {
        /// Requested part count.
        nproc: usize,
        /// Available elements.
        nelems: usize,
    },
    /// Weight vector length does not equal the element count.
    BadLength,
    /// A weight is negative.
    Negative,
    /// A weight is NaN or infinite (index of the first offender).
    NonFinite {
        /// Index of the first non-finite element weight.
        index: usize,
    },
    /// The weights sum to zero (or less), so no split targets exist.
    ZeroTotal,
    /// A per-part capacity is negative, NaN, or infinite (index of the
    /// first offending part).
    BadCapacity {
        /// Index of the first bad capacity entry.
        index: usize,
    },
    /// Every part has zero capacity, so no part can hold any element.
    ZeroCapacity,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::ZeroParts => write!(f, "part count must be positive"),
            SplitError::TooManyParts { nproc, nelems } => {
                write!(f, "{nproc} parts requested for {nelems} elements")
            }
            SplitError::BadLength => {
                write!(f, "weight vector length must equal element count")
            }
            SplitError::Negative => write!(f, "weights must be non-negative"),
            SplitError::NonFinite { index } => {
                write!(f, "weight at element {index} is NaN or infinite")
            }
            SplitError::ZeroTotal => write!(f, "total weight must be positive"),
            SplitError::BadCapacity { index } => {
                write!(f, "capacity of part {index} is negative, NaN, or infinite")
            }
            SplitError::ZeroCapacity => {
                write!(f, "at least one part must have positive capacity")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// Split a visit order into `nproc` contiguous segments of near-equal
/// total weight.
///
/// `nelems` is the element count, `elem_at(rank)` maps a position along
/// the order to the element id visited there (a bijection onto
/// `0..nelems`), and `weights[e]` is the work of element `e` (indexed by
/// element id, not rank). A part boundary is placed where the running
/// weight crosses `i·W/nproc`; every part receives at least one element
/// when `nproc ≤ nelems`.
pub fn split_order_weighted(
    nelems: usize,
    elem_at: impl Fn(usize) -> usize,
    nproc: usize,
    weights: &[f64],
) -> Result<Partition, SplitError> {
    let _span = cubesfc_obs::span("slice");
    if nproc == 0 {
        return Err(SplitError::ZeroParts);
    }
    if nproc > nelems {
        return Err(SplitError::TooManyParts { nproc, nelems });
    }
    if weights.len() != nelems {
        return Err(SplitError::BadLength);
    }
    // Non-finite weights get their own error: a NaN passes every `< 0.0`
    // sign check (all comparisons on NaN are false) and an infinity makes
    // `total` infinite, so either would silently break the prefix-sum
    // split targets below instead of failing at the boundary.
    if let Some(index) = weights.iter().position(|w| !w.is_finite()) {
        return Err(SplitError::NonFinite { index });
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(SplitError::Negative);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(SplitError::ZeroTotal);
    }

    let targets: Vec<f64> = (0..nproc)
        .map(|p| total * (p as f64 + 1.0) / nproc as f64)
        .collect();
    let assign = split_to_targets(nelems, elem_at, weights, &targets, |seg| seg as u32);
    Ok(Partition::new(nproc, assign))
}

/// Split a visit order into segments matching per-part *capacities*.
///
/// The generalization of [`split_order_weighted`] used for graceful
/// degradation: `capacities[p]` is the relative work rate of part `p`
/// (equal capacities reproduce the uniform splitter exactly). A part
/// with zero capacity receives **no elements** — its label survives in
/// the returned partition (`nparts == capacities.len()`) so migration
/// plans against the previous assignment stay well-formed, but every
/// element it held must move. Every part with positive capacity receives
/// at least one element when there are enough elements to go around.
pub fn split_order_weighted_capacity(
    nelems: usize,
    elem_at: impl Fn(usize) -> usize,
    capacities: &[f64],
    weights: &[f64],
) -> Result<Partition, SplitError> {
    let _span = cubesfc_obs::span("slice");
    let nproc = capacities.len();
    if nproc == 0 {
        return Err(SplitError::ZeroParts);
    }
    if let Some(index) = capacities.iter().position(|c| !c.is_finite() || *c < 0.0) {
        return Err(SplitError::BadCapacity { index });
    }
    // The split runs over the *alive* (positive-capacity) parts only;
    // dead parts keep their labels but are never assigned to.
    let alive: Vec<usize> = (0..nproc).filter(|&p| capacities[p] > 0.0).collect();
    if alive.is_empty() {
        return Err(SplitError::ZeroCapacity);
    }
    if alive.len() > nelems {
        return Err(SplitError::TooManyParts {
            nproc: alive.len(),
            nelems,
        });
    }
    if weights.len() != nelems {
        return Err(SplitError::BadLength);
    }
    if let Some(index) = weights.iter().position(|w| !w.is_finite()) {
        return Err(SplitError::NonFinite { index });
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(SplitError::Negative);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(SplitError::ZeroTotal);
    }
    let cap_total: f64 = alive.iter().map(|&p| capacities[p]).sum();

    // Boundary targets at cumulative-capacity fractions of the total
    // weight: part `alive[i]` should end once the running weight reaches
    // `total · Σ_{j≤i} cap_j / Σ cap`.
    let mut cum = 0.0f64;
    let targets: Vec<f64> = alive
        .iter()
        .map(|&p| {
            cum += capacities[p];
            total * cum / cap_total
        })
        .collect();
    let assign = split_to_targets(nelems, elem_at, weights, &targets, |seg| alive[seg] as u32);
    Ok(Partition::new(nproc, assign))
}

/// The shared greedy sweep: walk the order, advancing to the next
/// segment at the *nearest* prefix-sum boundary. `label(seg)` maps the
/// segment index onto the final part label.
///
/// A boundary is taken when adding the current element would overshoot
/// the segment's target by at least as much as stopping here undershoots
/// it — comparing both `acc` and `acc + w[e]` to the target, rather than
/// `acc` alone, which systematically overfills early segments (the last
/// element before an `acc >= target` test can land far past the
/// boundary). Segments never advance away from an empty segment, and a
/// segment closes early when the remaining elements are only just enough
/// to give one to every later segment.
fn split_to_targets(
    nelems: usize,
    elem_at: impl Fn(usize) -> usize,
    weights: &[f64],
    targets: &[f64],
    label: impl Fn(usize) -> u32,
) -> Vec<u32> {
    let nseg = targets.len();
    let mut assign = vec![0u32; nelems];
    let mut seg = 0usize;
    let mut acc = 0.0f64;
    let mut count_in_seg = 0usize;
    for rank in 0..nelems {
        let e = elem_at(rank);
        let remaining = nelems - rank; // elements still to assign, incl. this
        let segs_after = nseg - seg - 1;
        let target = targets[seg];
        let must = count_in_seg > 0 && remaining == segs_after;
        let crossed = (acc + weights[e]) - target >= target - acc;
        let may = count_in_seg > 0 && crossed && remaining > segs_after;
        if seg + 1 < nseg && (must || may) {
            seg += 1;
            count_in_seg = 0;
        }
        assign[e] = label(seg);
        count_in_seg += 1;
        acc += weights[e];
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_order_splits_by_weight() {
        // 8 elements, first half 3× heavier: part 0 takes fewer elements.
        let mut w = vec![1.0; 8];
        w[..4].fill(3.0);
        let p = split_order_weighted(8, |r| r, 2, &w).unwrap();
        let sizes = p.part_sizes();
        assert!(sizes[0] < sizes[1], "{sizes:?}");
    }

    #[test]
    fn permuted_order_respects_rank_not_id() {
        // Reversed order: weight skew on high element ids lands early on
        // the order, so the cut still balances along the *order*.
        let k = 12;
        let mut w = vec![1.0; k];
        w[11] = 100.0;
        let p = split_order_weighted(k, |r| k - 1 - r, 2, &w).unwrap();
        // Element 11 is visited first; it alone saturates part 0.
        assert_eq!(p.part_of(11), 0);
        assert_eq!(p.part_sizes()[0], 1);
    }

    #[test]
    fn error_cases() {
        let w = vec![1.0; 4];
        assert_eq!(
            split_order_weighted(4, |r| r, 0, &w),
            Err(SplitError::ZeroParts)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 5, &w),
            Err(SplitError::TooManyParts {
                nproc: 5,
                nelems: 4
            })
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[1.0; 3]),
            Err(SplitError::BadLength)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[0.0; 4]),
            Err(SplitError::ZeroTotal)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[1.0, -1.0, 1.0, 1.0]),
            Err(SplitError::Negative)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[1.0, f64::NAN, 1.0, 1.0]),
            Err(SplitError::NonFinite { index: 1 })
        );
    }

    #[test]
    fn boundary_chooses_the_nearer_prefix() {
        // Weights [3, 3, 1, 1], two parts, target 4. Testing `acc`
        // against the target *before* adding the current element keeps
        // element 1 in part 0 (acc = 3 < 4), overfilling it to load 6;
        // the nearest-boundary rule cuts after element 0 (|3-4| < |6-4|),
        // giving loads [3, 5] — the contiguous optimum.
        let w = vec![3.0, 3.0, 1.0, 1.0];
        let p = split_order_weighted(4, |r| r, 2, &w).unwrap();
        assert_eq!(p.assignment(), &[0, 1, 1, 1]);
        // Symmetric tail skew: [1, 1, 3, 3] cuts after element 2.
        let w = vec![1.0, 1.0, 3.0, 3.0];
        let p = split_order_weighted(4, |r| r, 2, &w).unwrap();
        assert_eq!(p.assignment(), &[0, 0, 0, 1]);
    }

    #[test]
    fn uniform_divisible_split_is_exact() {
        // Uniform weights with nproc | nelems must still give equal
        // counts (the paper's LB = 0 configurations).
        let w = vec![1.0; 24];
        let p = split_order_weighted(24, |r| r, 6, &w).unwrap();
        assert!(
            p.part_sizes().iter().all(|&s| s == 4),
            "{:?}",
            p.part_sizes()
        );
    }

    #[test]
    fn capacity_split_equal_capacities_match_uniform_splitter() {
        let mut w = vec![1.0; 16];
        w[3] = 5.0;
        w[11] = 2.0;
        let a = split_order_weighted(16, |r| r, 4, &w).unwrap();
        let b = split_order_weighted_capacity(16, |r| r, &[1.0; 4], &w).unwrap();
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn capacity_split_skews_load_toward_capacity() {
        // Part 0 has twice the capacity of part 1: it should carry
        // roughly twice the weight.
        let w = vec![1.0; 12];
        let p = split_order_weighted_capacity(12, |r| r, &[2.0, 1.0], &w).unwrap();
        let sizes = p.part_sizes();
        assert_eq!(sizes[0], 8, "{sizes:?}");
        assert_eq!(sizes[1], 4, "{sizes:?}");
    }

    #[test]
    fn zero_capacity_part_is_empty_but_keeps_its_label() {
        let w = vec![1.0; 12];
        let p = split_order_weighted_capacity(12, |r| r, &[1.0, 0.0, 1.0], &w).unwrap();
        assert_eq!(p.nparts(), 3);
        let sizes = p.part_sizes();
        assert_eq!(sizes[1], 0, "{sizes:?}");
        assert_eq!(sizes[0] + sizes[2], 12);
        // The surviving parts split the load evenly between them.
        assert_eq!(sizes[0], 6, "{sizes:?}");
        // Contiguity: part index along the order goes 0 then 2.
        assert!(p.assignment().iter().all(|&q| q == 0 || q == 2));
    }

    #[test]
    fn capacity_error_cases() {
        let w = vec![1.0; 4];
        assert_eq!(
            split_order_weighted_capacity(4, |r| r, &[], &w),
            Err(SplitError::ZeroParts)
        );
        assert_eq!(
            split_order_weighted_capacity(4, |r| r, &[0.0, 0.0], &w),
            Err(SplitError::ZeroCapacity)
        );
        assert_eq!(
            split_order_weighted_capacity(4, |r| r, &[1.0, -1.0], &w),
            Err(SplitError::BadCapacity { index: 1 })
        );
        assert_eq!(
            split_order_weighted_capacity(4, |r| r, &[1.0, f64::NAN], &w),
            Err(SplitError::BadCapacity { index: 1 })
        );
        assert_eq!(
            split_order_weighted_capacity(4, |r| r, &[1.0; 5], &w),
            Err(SplitError::TooManyParts {
                nproc: 5,
                nelems: 4
            })
        );
        assert_eq!(
            split_order_weighted_capacity(4, |r| r, &[1.0, 1.0], &[0.0; 4]),
            Err(SplitError::ZeroTotal)
        );
    }

    #[test]
    fn every_part_nonempty_under_extreme_skew() {
        let k = 16;
        let mut w = vec![1e-12; k];
        w[0] = 1e6;
        let p = split_order_weighted(k, |r| r, k, &w).unwrap();
        assert_eq!(p.nonempty_parts(), k);
    }

    #[test]
    fn displays_are_informative() {
        let e = SplitError::TooManyParts {
            nproc: 9,
            nelems: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        assert!(SplitError::NonFinite { index: 7 }.to_string().contains('7'));
    }
}
