//! Weighted prefix-sum splitting of a 1-D element order.
//!
//! The space-filling-curve partitioners reduce partitioning to slicing a
//! linear order into contiguous segments. This module holds the order-
//! level splitting primitive: given a visit order (rank → element id)
//! and per-element work weights, place the `nproc - 1` cuts where the
//! running weight crosses `i·W/nproc`, guaranteeing every part at least
//! one element. It lives in the graph crate (below both the mesh and the
//! dynamic-balance layers) so the static partitioner and the incremental
//! rebalancer share one implementation — incremental re-splits are just
//! this function on the *same* order with new weights, which is what
//! keeps successive cuts nested and migration volumes low.

use crate::partition::Partition;
use std::fmt;

/// Errors from [`split_order_weighted`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitError {
    /// Zero parts requested.
    ZeroParts,
    /// More parts than elements.
    TooManyParts {
        /// Requested part count.
        nproc: usize,
        /// Available elements.
        nelems: usize,
    },
    /// Weight vector length does not equal the element count.
    BadLength,
    /// A weight is negative.
    Negative,
    /// A weight is NaN or infinite (index of the first offender).
    NonFinite {
        /// Index of the first non-finite element weight.
        index: usize,
    },
    /// The weights sum to zero (or less), so no split targets exist.
    ZeroTotal,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::ZeroParts => write!(f, "part count must be positive"),
            SplitError::TooManyParts { nproc, nelems } => {
                write!(f, "{nproc} parts requested for {nelems} elements")
            }
            SplitError::BadLength => {
                write!(f, "weight vector length must equal element count")
            }
            SplitError::Negative => write!(f, "weights must be non-negative"),
            SplitError::NonFinite { index } => {
                write!(f, "weight at element {index} is NaN or infinite")
            }
            SplitError::ZeroTotal => write!(f, "total weight must be positive"),
        }
    }
}

impl std::error::Error for SplitError {}

/// Split a visit order into `nproc` contiguous segments of near-equal
/// total weight.
///
/// `nelems` is the element count, `elem_at(rank)` maps a position along
/// the order to the element id visited there (a bijection onto
/// `0..nelems`), and `weights[e]` is the work of element `e` (indexed by
/// element id, not rank). A part boundary is placed where the running
/// weight crosses `i·W/nproc`; every part receives at least one element
/// when `nproc ≤ nelems`.
pub fn split_order_weighted(
    nelems: usize,
    elem_at: impl Fn(usize) -> usize,
    nproc: usize,
    weights: &[f64],
) -> Result<Partition, SplitError> {
    let _span = cubesfc_obs::span("slice");
    if nproc == 0 {
        return Err(SplitError::ZeroParts);
    }
    if nproc > nelems {
        return Err(SplitError::TooManyParts { nproc, nelems });
    }
    if weights.len() != nelems {
        return Err(SplitError::BadLength);
    }
    // Non-finite weights get their own error: a NaN passes every `< 0.0`
    // sign check (all comparisons on NaN are false) and an infinity makes
    // `total` infinite, so either would silently break the prefix-sum
    // split targets below instead of failing at the boundary.
    if let Some(index) = weights.iter().position(|w| !w.is_finite()) {
        return Err(SplitError::NonFinite { index });
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(SplitError::Negative);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(SplitError::ZeroTotal);
    }

    let mut assign = vec![0u32; nelems];
    let mut part = 0usize;
    let mut acc = 0.0f64;
    let mut count_in_part = 0usize;
    for rank in 0..nelems {
        let e = elem_at(rank);
        let remaining = nelems - rank; // elements still to assign, incl. this
        let parts_after = nproc - part - 1;
        // Advance when the running weight crossed this part's boundary —
        // or when the remaining elements are only just enough to give one
        // to every later part. Never advance away from an empty part.
        let target = total * (part as f64 + 1.0) / nproc as f64;
        let must = count_in_part > 0 && remaining == parts_after;
        let may = count_in_part > 0 && acc >= target && remaining > parts_after;
        if part + 1 < nproc && (must || may) {
            part += 1;
            count_in_part = 0;
        }
        assign[e] = part as u32;
        count_in_part += 1;
        acc += weights[e];
    }
    Ok(Partition::new(nproc, assign))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_order_splits_by_weight() {
        // 8 elements, first half 3× heavier: part 0 takes fewer elements.
        let mut w = vec![1.0; 8];
        w[..4].fill(3.0);
        let p = split_order_weighted(8, |r| r, 2, &w).unwrap();
        let sizes = p.part_sizes();
        assert!(sizes[0] < sizes[1], "{sizes:?}");
    }

    #[test]
    fn permuted_order_respects_rank_not_id() {
        // Reversed order: weight skew on high element ids lands early on
        // the order, so the cut still balances along the *order*.
        let k = 12;
        let mut w = vec![1.0; k];
        w[11] = 100.0;
        let p = split_order_weighted(k, |r| k - 1 - r, 2, &w).unwrap();
        // Element 11 is visited first; it alone saturates part 0.
        assert_eq!(p.part_of(11), 0);
        assert_eq!(p.part_sizes()[0], 1);
    }

    #[test]
    fn error_cases() {
        let w = vec![1.0; 4];
        assert_eq!(
            split_order_weighted(4, |r| r, 0, &w),
            Err(SplitError::ZeroParts)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 5, &w),
            Err(SplitError::TooManyParts {
                nproc: 5,
                nelems: 4
            })
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[1.0; 3]),
            Err(SplitError::BadLength)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[0.0; 4]),
            Err(SplitError::ZeroTotal)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[1.0, -1.0, 1.0, 1.0]),
            Err(SplitError::Negative)
        );
        assert_eq!(
            split_order_weighted(4, |r| r, 2, &[1.0, f64::NAN, 1.0, 1.0]),
            Err(SplitError::NonFinite { index: 1 })
        );
    }

    #[test]
    fn every_part_nonempty_under_extreme_skew() {
        let k = 16;
        let mut w = vec![1e-12; k];
        w[0] = 1e6;
        let p = split_order_weighted(k, |r| r, k, &w).unwrap();
        assert_eq!(p.nonempty_parts(), k);
    }

    #[test]
    fn displays_are_informative() {
        let e = SplitError::TooManyParts {
            nproc: 9,
            nelems: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        assert!(SplitError::NonFinite { index: 7 }.to_string().contains('7'));
    }
}
