//! Property-based tests for the multilevel partitioner on random graphs.

use cubesfc_graph::coarsen::{coarsen, contract, heavy_edge_matching};
use cubesfc_graph::metrics::{edgecut, load_balance, metis_volume, partition_stats};
use cubesfc_graph::partition::PartitionConfig;
use cubesfc_graph::{kway, kway_volume, recursive_bisection, CsrGraph, SplitMix64};
use proptest::prelude::*;

/// A random connected graph: a spanning path plus extra random edges.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (4usize..60, 0usize..80, any::<u64>()).prop_map(|(nv, extra, seed)| {
        let mut rng = cubesfc_graph::SplitMix64::new(seed);
        let mut adj: Vec<std::collections::BTreeMap<u32, u32>> =
            vec![std::collections::BTreeMap::new(); nv];
        // Spanning path for connectivity.
        for v in 0..nv - 1 {
            let w = 1 + (rng.below(9) as u32);
            adj[v].insert((v + 1) as u32, w);
            adj[v + 1].insert(v as u32, w);
        }
        for _ in 0..extra {
            let a = rng.below(nv);
            let b = rng.below(nv);
            if a != b && !adj[a].contains_key(&(b as u32)) {
                let w = 1 + (rng.below(9) as u32);
                adj[a].insert(b as u32, w);
                adj[b].insert(a as u32, w);
            }
        }
        let lists: Vec<Vec<(u32, u32)>> =
            adj.into_iter().map(|m| m.into_iter().collect()).collect();
        CsrGraph::from_lists(&lists).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_drivers_produce_valid_partitions(
        g in arb_graph(),
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= g.nv());
        let cfg = PartitionConfig::new(k).with_seed(seed);
        for p in [recursive_bisection(&g, &cfg), kway(&g, &cfg), kway_volume(&g, &cfg)] {
            prop_assert_eq!(p.len(), g.nv());
            prop_assert_eq!(p.nparts(), k);
            // Every vertex assigned within range is enforced by the type;
            // check the weights add up.
            let w: u64 = p.part_weights(&g).iter().sum();
            prop_assert_eq!(w, g.total_vwgt());
        }
    }

    #[test]
    fn balance_caps_hold(g in arb_graph(), k in 2usize..6, seed in any::<u64>()) {
        prop_assume!(k <= g.nv());
        let cfg = PartitionConfig::new(k).with_seed(seed);
        let target = g.total_vwgt() as f64 / k as f64;
        // The drivers promise: no part exceeds max(3% over target,
        // target + heaviest vertex). RB composes caps multiplicatively
        // through ~log2(k) levels, so allow that growth.
        let levels = (k as f64).log2().ceil().max(1.0);
        let cap = (target * 1.03_f64.powf(levels)).ceil() as u64
            + levels as u64 * g.max_vwgt();
        for p in [recursive_bisection(&g, &cfg), kway(&g, &cfg), kway_volume(&g, &cfg)] {
            let w = p.part_weights(&g);
            for &pw in &w {
                prop_assert!(pw <= cap, "weights {:?} cap {}", w, cap);
            }
        }
    }

    #[test]
    fn kway_cut_is_no_worse_than_random(g in arb_graph(), seed in any::<u64>()) {
        let k = 4.min(g.nv());
        prop_assume!(k >= 2);
        let cfg = PartitionConfig::new(k).with_seed(seed);
        let p = kway(&g, &cfg);
        // A modulo assignment is the "no thought" baseline.
        let naive = cubesfc_graph::Partition::new(
            k,
            (0..g.nv()).map(|v| (v % k) as u32).collect(),
        );
        prop_assert!(edgecut(&g, &p) <= edgecut(&g, &naive) + 2);
    }

    #[test]
    fn tv_volume_not_worse_than_kway(g in arb_graph(), seed in any::<u64>()) {
        let k = 4.min(g.nv());
        prop_assume!(k >= 2);
        let cfg = PartitionConfig::new(k).with_seed(seed);
        let pk = kway(&g, &cfg);
        let pt = kway_volume(&g, &cfg);
        // TV starts from the KWAY result and only accepts volume-improving
        // moves, so it can never be worse than its own starting point.
        prop_assert!(metis_volume(&g, &pt) <= metis_volume(&g, &pk));
    }

    #[test]
    fn stats_are_internally_consistent(g in arb_graph(), seed in any::<u64>()) {
        let k = 3.min(g.nv());
        prop_assume!(k >= 2);
        let p = kway(&g, &PartitionConfig::new(k).with_seed(seed));
        let s = partition_stats(&g, &p);
        prop_assert_eq!(s.nelemd.len(), k);
        prop_assert_eq!(s.spcv.len(), k);
        prop_assert_eq!(s.total_points, s.spcv.iter().sum::<u64>());
        prop_assert!(s.lb_nelemd >= 0.0 && s.lb_nelemd < 1.0);
        prop_assert!(s.lb_spcv >= 0.0 && s.lb_spcv <= 1.0);
        prop_assert_eq!(s.lb_nelemd, load_balance(&s.nelemd));
        // Edgecut bounds the METIS volume from above: each cut edge adds at
        // most 2 boundary contributions (one per endpoint).
        prop_assert!(s.metis_volume <= 2 * s.edgecut);
    }

    #[test]
    fn determinism(g in arb_graph(), seed in any::<u64>()) {
        let k = 3.min(g.nv());
        prop_assume!(k >= 2);
        let cfg = PartitionConfig::new(k).with_seed(seed);
        prop_assert_eq!(kway(&g, &cfg), kway(&g, &cfg));
        prop_assert_eq!(
            recursive_bisection(&g, &cfg),
            recursive_bisection(&g, &cfg)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coarsening_preserves_weight_and_validity(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let levels = coarsen(&g, 8, &mut rng);
        let mut prev_nv = g.nv();
        for l in &levels {
            prop_assert_eq!(l.graph.total_vwgt(), g.total_vwgt());
            prop_assert!(l.graph.validate().is_ok());
            prop_assert!(l.graph.nv() <= prev_nv);
            prop_assert_eq!(l.cmap.len(), prev_nv);
            prev_nv = l.graph.nv();
        }
    }

    #[test]
    fn matching_is_always_an_involution_of_neighbors(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mate = heavy_edge_matching(&g, &mut rng);
        for v in 0..g.nv() {
            let m = mate[v] as usize;
            prop_assert_eq!(mate[m] as usize, v);
            if m != v {
                prop_assert!(g.neighbors(v).any(|(n, _)| n == m));
            }
        }
        // Contraction of any valid matching stays valid.
        let lvl = contract(&g, &mate);
        prop_assert!(lvl.graph.validate().is_ok());
    }

    #[test]
    fn kway_refine_never_violates_a_satisfiable_cap(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        // Start from a modulo partition (within cap for unit-ish weights
        // scaled by the generous cap below) and refine: the cap must hold
        // after every public driver entry point.
        let k = 3.min(g.nv());
        prop_assume!(k >= 2);
        let mut parts: Vec<u32> = (0..g.nv()).map(|v| (v % k) as u32).collect();
        let total = g.total_vwgt();
        let cap = total; // always satisfiable
        let mut rng = SplitMix64::new(seed);
        cubesfc_graph::kway::kway_refine(&g, &mut parts, k, cap, 4, &mut rng);
        let mut w = vec![0u64; k];
        for (v, &p) in parts.iter().enumerate() {
            w[p as usize] += g.vwgt[v] as u64;
        }
        for &pw in &w {
            prop_assert!(pw <= cap);
        }
        prop_assert_eq!(w.iter().sum::<u64>(), total);
    }

    #[test]
    fn coarse_cut_projects_to_equal_fine_cut(g in arb_graph(), seed in any::<u64>()) {
        // A partition of the coarse graph, projected to the fine graph,
        // has exactly the same weighted cut (internal edges vanish into
        // coarse vertices).
        let mut rng = SplitMix64::new(seed);
        let mate = heavy_edge_matching(&g, &mut rng);
        let lvl = contract(&g, &mate);
        prop_assume!(lvl.graph.nv() >= 2);
        let cp = kway(&lvl.graph, &PartitionConfig::new(2).with_seed(seed));
        let fine: Vec<u32> = lvl
            .cmap
            .iter()
            .map(|&c| cp.assignment()[c as usize])
            .collect();
        let coarse_cut = cubesfc_graph::metrics::edgecut_weight(
            &lvl.graph,
            &cp,
        );
        let fine_cut = cubesfc_graph::metrics::edgecut_weight(
            &g,
            &cubesfc_graph::Partition::new(2, fine),
        );
        prop_assert_eq!(coarse_cut, fine_cut);
    }
}
