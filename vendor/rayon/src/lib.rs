//! Shim of `rayon`: `slice.par_iter().map(f).collect()` implemented with
//! `std::thread::scope`. Parallelism is real (multiple OS threads, even
//! on one core — important for exercising concurrent code paths) and the
//! output order matches the input order, like rayon's indexed collect.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// How many worker threads a parallel call may use: at least 2 (so
/// concurrency is exercised even on single-core machines), at most 8.
fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(2, 8)
}

/// Entry point: `.par_iter()` on slices (and, via unsized coercion,
/// arrays and `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped parallel iterator; `collect` runs the map on scoped threads.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Apply the map across worker threads, preserving input order.
    pub fn collect(self) -> Vec<R> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let nthreads = max_threads().min(n);
        if nthreads == 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let chunk = n.div_ceil(nthreads);
        let f = &self.f;
        std::thread::scope(|s| {
            for (out_chunk, in_chunk) in results.chunks_mut(chunk).zip(self.items.chunks(chunk)) {
                s.spawn(move || {
                    for (out, item) in out_chunk.iter_mut().zip(in_chunk) {
                        *out = Some(f(item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker thread filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let xs: Vec<usize> = (0..100).collect();
        let ys: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn arrays_and_nesting_work() {
        let grid: Vec<Vec<usize>> = [1usize, 2, 3]
            .par_iter()
            .map(|&a| [10usize, 20].par_iter().map(|&b| a * b).collect())
            .collect();
        assert_eq!(grid, vec![vec![10, 20], vec![20, 40], vec![30, 60]]);
    }

    #[test]
    fn empty_input() {
        let none: Vec<u8> = Vec::<u8>::new().par_iter().map(|&b| b).collect();
        assert!(none.is_empty());
    }
}
