//! Shim of `rayon`: `slice.par_iter().map(f).collect()` implemented with
//! `std::thread::scope`, plus a `join` primitive for recursive
//! fork/join parallelism. Parallelism is real (multiple OS threads, even
//! on one core — important for exercising concurrent code paths) and the
//! output order matches the input order, like rayon's indexed collect.
//!
//! The worker budget is configurable at runtime through
//! [`set_num_threads`] (0 restores the automatic default), which is how
//! the `cubesfc` CLI plumbs `--jobs N` / `CUBESFC_JOBS` down to every
//! parallel call site. `set_num_threads(1)` makes both `par_iter` and
//! `join` run strictly inline on the calling thread.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Runtime override of the worker budget; 0 means "automatic".
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Extra threads currently spawned by [`join`] calls, across the whole
/// process — bounds nested fork/join so recursion cannot oversubscribe.
static ACTIVE_JOIN_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker budget for all subsequent parallel calls.
///
/// `0` restores the automatic default (`available_parallelism`, clamped
/// to `2..=8`); `1` forces strictly serial inline execution; any other
/// value caps the number of concurrent worker threads.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker budget a parallel call may currently use.
pub fn current_num_threads() -> usize {
    max_threads()
}

/// How many worker threads a parallel call may use. With no override:
/// at least 2 (so concurrency is exercised even on single-core
/// machines), at most 8.
fn max_threads() -> usize {
    match NUM_THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(2, 8),
        n => n,
    }
}

/// Run two closures, potentially in parallel, and return both results.
///
/// Like rayon's `join`, the closures always both run to completion and
/// the pairing of results to closures is preserved; whether `b` runs on
/// a second thread depends on the remaining worker budget. Callers must
/// not rely on execution order — with the budget exhausted (or
/// `set_num_threads(1)`) both run inline, `a` first.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = max_threads();
    // Reserve one extra thread if the budget allows; otherwise inline.
    let reserved = budget > 1
        && ACTIVE_JOIN_THREADS
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |active| {
                (active + 1 < budget).then_some(active + 1)
            })
            .is_ok();
    if !reserved {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    struct Release;
    impl Drop for Release {
        fn drop(&mut self) {
            ACTIVE_JOIN_THREADS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _release = Release;
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Entry point: `.par_iter()` on slices (and, via unsized coercion,
/// arrays and `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped parallel iterator; `collect` runs the map on scoped threads.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Apply the map across worker threads, preserving input order.
    pub fn collect(self) -> Vec<R> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let nthreads = max_threads().min(n);
        if nthreads == 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let chunk = n.div_ceil(nthreads);
        let f = &self.f;
        std::thread::scope(|s| {
            for (out_chunk, in_chunk) in results.chunks_mut(chunk).zip(self.items.chunks(chunk)) {
                s.spawn(move || {
                    for (out, item) in out_chunk.iter_mut().zip(in_chunk) {
                        *out = Some(f(item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker thread filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        assert_eq!(sum(0, 10_000), 10_000 * 9_999 / 2);
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| join(|| 1, || panic!("worker boom")));
        assert!(r.is_err());
    }

    #[test]
    fn num_threads_override_round_trips() {
        // Other tests in this binary run concurrently, so exercise the
        // override briefly and always restore the automatic default.
        set_num_threads(1);
        assert_eq!(current_num_threads(), 1);
        let (a, b) = join(|| 7, || 11); // must run inline, still correct
        assert_eq!((a, b), (7, 11));
        set_num_threads(0);
        assert!(current_num_threads() >= 2);
    }
}
