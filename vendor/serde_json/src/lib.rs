//! Placeholder shim of `serde_json`; see `vendor/serde/src/lib.rs` for
//! the rationale. Only referenced from the feature-gated serde round-trip
//! test, which compiles to nothing while the `serde` feature is off.
//! Profile/metrics JSON export in this workspace uses the hand-rolled
//! serializer in `cubesfc-obs` instead.
