//! Shim of `crossbeam`: only the `channel` module, backed by
//! `std::sync::mpsc`. The workspace uses unbounded channels with cloned
//! senders and single-consumer receivers, which mpsc supports directly.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// An unbounded multi-producer single-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(7).unwrap());
        tx.send(3).unwrap();
        h.join().unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![3, 7]);
    }
}
