//! Shim of `rustc-hash`: the FxHasher multiply-rotate hash and the
//! `FxHashMap`/`FxHashSet` aliases (the only items this workspace uses).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc hash: wrapping multiply by a 64-bit constant with a
/// rotate, folded over the input words. Fast for small integer-ish keys.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
        assert!(s.insert((1, 2, 3)));
        assert!(!s.insert((1, 2, 3)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
