//! Shim of `criterion`: enough API for this workspace's benches to
//! compile and run under `cargo bench` with no external dependencies.
//!
//! Measurement is deliberately simple — one warm-up plus a few timed
//! iterations per benchmark, reporting the mean wall-clock time to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison; use a real profiler for serious measurements.

use std::fmt::Display;
use std::time::Instant;

/// Timed iterations per benchmark (after one warm-up run).
const TIMED_ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn from_parameter<D: Display>(parameter: D) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    pub fn new<D: Display>(function: &str, parameter: D) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            total_ns: 0,
            iters: 0,
        };
        f(&mut bencher, input);
        let mean_ns = bencher
            .total_ns
            .checked_div(bencher.iters as u128)
            .unwrap_or(0);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0 => {
                format!("  {:.3} Melem/s", n as f64 * 1e3 / mean_ns as f64)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0 => {
                format!("  {:.3} MB/s", n as f64 * 1e3 / mean_ns as f64)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:.3} ms/iter ({} iters){rate}",
            self.name,
            id.text,
            mean_ns as f64 / 1e6,
            bencher.iters,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    total_ns: u128,
    iters: u32,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += TIMED_ITERS;
    }
}

/// Re-export so `criterion::black_box` callers work; benches here import
/// `std::hint::black_box` directly, but both spellings are valid.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(42), &5u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(ran, 1 + TIMED_ITERS);
    }
}
