//! Placeholder shim of `serde`.
//!
//! Every `serde` reference in this workspace is behind the off-by-default
//! `serde` cargo feature (`#[cfg_attr(feature = "serde", ...)]` /
//! `#![cfg(feature = "serde")]`), so with that feature disabled nothing
//! ever names a `serde` item and this empty crate only needs to exist for
//! dependency resolution. Enabling the workspace `serde` feature requires
//! swapping this shim for the real crate (registry access).
