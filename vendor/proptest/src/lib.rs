//! Shim of `proptest`: a deterministic mini property-testing harness.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config]`), range/tuple/`Just`/
//! `prop_oneof!`/`collection::vec` strategies, `prop_map` / `prop_filter`
//! adapters, `any::<T>()`, and `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest: cases are generated from a seed
//! derived deterministically from the test's module path and name (stable
//! across runs), and failing cases are reported without shrinking.

use std::ops::{Range, RangeInclusive};

/// A case was rejected (by `prop_assume!`); it does not count toward the
/// configured number of cases.
pub struct Rejected;

/// Subset of proptest's config: just the case count.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator used for all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from a test identifier string (stable across runs).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: regenerates until the predicate passes (bounded).
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "proptest shim: filter {:?} rejected 1000 candidates",
            self.whence
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// A boxed strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among alternative strategies of one value type.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Vectors of `min..=max` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { elem, min, max }
    }

    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// The `proptest!` block: expands each contained test function into a
/// deterministic multi-case loop. `prop_assume!` rejections re-draw the
/// case; assertion failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(50).max(2000),
                        "proptest shim: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::Rejected> = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = usize> {
        prop_oneof![Just(1usize), Just(2), Just(3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(arb_small(), 1..=4),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
            let _ = flag;
        }

        #[test]
        fn map_and_filter(s in (1usize..5, 1usize..5)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| a * 10 + b))
        {
            prop_assert_ne!(s / 10, s % 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
