//! Weighted partitioning: when elements stop costing the same.
//!
//! The paper treats every spectral element as equal work. Real
//! atmospheric models break that assumption (tropical physics columns
//! cost more, polar night chemistry less). This example gives tropical
//! elements 3× the work of polar ones and compares the plain equal-count
//! curve split against the weighted prefix-sum split — the natural SFC
//! extension the paper's framework admits.
//!
//! ```text
//! cargo run --release --example weighted_partition
//! ```

use cubesfc::graph::load_balance;
use cubesfc::{partition, partition_default, CubedSphere, PartitionMethod, PartitionOptions};

fn main() {
    let ne = 16; // K = 1536
    let nproc = 64;
    let mesh = CubedSphere::new(ne);

    // Synthetic column-physics cost: 1 + 2·cos²(latitude), i.e. 3× at the
    // equator tapering to 1× at the poles.
    let weights: Vec<f64> = mesh
        .centers()
        .iter()
        .map(|p| {
            let coslat2 = p.xyz[0] * p.xyz[0] + p.xyz[1] * p.xyz[1];
            1.0 + 2.0 * coslat2
        })
        .collect();
    let total: f64 = weights.iter().sum();
    println!(
        "K = {} elements, synthetic physics cost total {:.1} (min {:.2}, max {:.2})",
        mesh.num_elems(),
        total,
        weights.iter().cloned().fold(f64::MAX, f64::min),
        weights.iter().cloned().fold(f64::MIN, f64::max),
    );

    let work_per_part = |p: &cubesfc::Partition| -> Vec<u64> {
        let mut w = vec![0.0f64; p.nparts()];
        for e in 0..p.len() {
            w[p.part_of(e)] += weights[e];
        }
        // Scale for the integer LB helper.
        w.into_iter().map(|x| (x * 1000.0) as u64).collect()
    };

    // 1. Equal-count SFC split (the paper's algorithm).
    let equal = partition_default(&mesh, PartitionMethod::Sfc, nproc).unwrap();
    let lb_equal = load_balance(&work_per_part(&equal));

    // 2. Weighted prefix-sum SFC split.
    let opts = PartitionOptions {
        weights: Some(weights.clone()),
        ..Default::default()
    };
    let weighted = partition(&mesh, PartitionMethod::Sfc, nproc, &opts).unwrap();
    let lb_weighted = load_balance(&work_per_part(&weighted));

    println!("\nwork imbalance LB(work), Eq. (1), {nproc} processors:");
    println!("  equal-count SFC split:  {lb_equal:.4}");
    println!("  weighted SFC split:     {lb_weighted:.4}");
    println!(
        "  (element counts now vary: min {} / max {})",
        weighted.part_sizes().iter().min().unwrap(),
        weighted.part_sizes().iter().max().unwrap()
    );

    assert!(
        lb_weighted < lb_equal,
        "weighted splitting should reduce work imbalance"
    );
    println!("\nweighted prefix splitting absorbs the cost gradient the");
    println!("equal-count rule cannot see, at zero extra runtime cost.");
}
