//! Run the mini-SEAM transport solver in parallel over virtual ranks and
//! watch partition quality show up as measured wall-clock: the executable
//! version of the paper's experiment.
//!
//! A Gaussian blob is advected once around the sphere by a solid-body
//! wind; the numerical answer must be identical (to rounding) for every
//! partition, while the time to get it is not.
//!
//! ```text
//! cargo run --release --example shallow_water
//! ```

use cubesfc::seam::solver::{AdvectionConfig, SerialSolver};
use cubesfc::seam::{gaussian_blob, run_parallel};
use cubesfc::{partition_default, CubedSphere, PartitionMethod};

fn main() {
    let ne = 8; // K = 384 elements
    let np = 6; // 6×6 GLL points per element
    let nlev = 4; // vertical levels
    let nranks = 8;
    let steps = 10;

    let mesh = CubedSphere::new(ne);
    let topo = mesh.topology();
    let cfg = AdvectionConfig::stable_for(ne, np, nlev);
    let ic = gaussian_blob([1.0, 0.0, 0.0], 0.5);

    // Serial reference.
    let mut serial = SerialSolver::new(topo, cfg);
    serial.set_initial(&ic);
    let t0 = std::time::Instant::now();
    serial.run(steps);
    let serial_secs = t0.elapsed().as_secs_f64();
    println!(
        "serial: {steps} steps of K={} np={np} nlev={nlev} in {:.3}s (mass {:.6})",
        mesh.num_elems(),
        serial_secs,
        serial.mass_integral()
    );

    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>14}",
        "method", "wall (s)", "max compute", "max wait", "vs serial ref"
    );
    for method in [
        PartitionMethod::Sfc,
        PartitionMethod::MetisKway,
        PartitionMethod::MetisRb,
        PartitionMethod::Morton,
    ] {
        let part = partition_default(&mesh, method, nranks).unwrap();
        let (field, stats) = run_parallel(topo, &part, cfg, steps, &ic);
        let diff = serial.q.max_abs_diff(&field);
        let maxc = stats
            .per_rank_compute
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let maxw = stats.per_rank_comm.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<8} {:>10.3} {:>11.3}s {:>11.3}s {:>14.2e}",
            method.label(),
            stats.wall_seconds,
            maxc,
            maxw,
            diff
        );
        assert!(
            diff < 1e-11,
            "{method}: parallel answer deviates from serial by {diff}"
        );
    }
    println!("\nall partitions produce the same physics; only the clock differs.");
}
