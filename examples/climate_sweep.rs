//! Climate-campaign planning: for each of the paper's model resolutions,
//! sweep the valid processor counts and report where SFC partitioning
//! pays off — the question an NCAR user sizing a century-long run would
//! actually ask.
//!
//! ```text
//! cargo run --release --example climate_sweep
//! ```

use cubesfc::report::{best_metis, PartitionReport};
use cubesfc::{table1, CostModel, CubedSphere, MachineModel, PartitionMethod};

fn main() {
    let machine = MachineModel::ncar_p690();
    let cost = CostModel::seam_climate();

    println!("SFC vs best-METIS advantage across the paper's resolutions\n");
    for res in table1() {
        let mesh = CubedSphere::new(res.ne);
        println!("K = {} (Ne = {}, {} curve):", res.k, res.ne, res.family());
        println!(
            "  {:>6} {:>8} {:>14} {:>14} {:>12}",
            "Nproc", "elem/p", "SFC time/step", "best METIS", "advantage"
        );
        // A handful of representative counts: coarse, the paper's
        // crossover region (~8 elem/proc), and the extreme.
        let procs = res.equal_share_procs();
        let picks: Vec<usize> = procs
            .iter()
            .copied()
            .filter(|&p| {
                let epp = res.k / p;
                p == 1 || epp == 8 || epp == 4 || epp == 2 || epp == 1 || p == res.max_nproc
            })
            .collect();
        for nproc in picks {
            let sfc = PartitionReport::compute(&mesh, PartitionMethod::Sfc, nproc, &machine, &cost)
                .unwrap();
            let metis = best_metis(&mesh, nproc, &machine, &cost).unwrap();
            println!(
                "  {:>6} {:>8} {:>12.2}ms {:>10.2}ms ({}) {:>+9.1}%",
                nproc,
                res.k / nproc,
                sfc.time_us / 1e3,
                metis.time_us / 1e3,
                metis.method,
                (metis.time_us / sfc.time_us - 1.0) * 100.0
            );
        }
        println!();
    }
    println!(
        "reading: the advantage opens below ~8 elements per processor —\n\
         exactly the regime century-long climate integrations run in."
    );
}
