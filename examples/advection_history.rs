//! A "history file" workflow: advect a blob around the sphere and write
//! lat-lon snapshots — the output path a climate model user would run,
//! exercising solver + lat-lon sampling together.
//!
//! Writes grayscale PPM frames (`/tmp/cubesfc_frame_*.ppm`) and prints a
//! coarse ASCII contour of the first/middle/last frames so the run is
//! inspectable without an image viewer.
//!
//! ```text
//! cargo run --release --example advection_history
//! ```

use cubesfc::seam::solver::{AdvectionConfig, SerialSolver};
use cubesfc::seam::{gaussian_blob, to_latlon, GllBasis};
use cubesfc::CubedSphere;
use std::io::Write;

fn ascii_contour(grid: &[Vec<f64>]) -> String {
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = grid
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-12);
    let mut out = String::new();
    // Top = north pole.
    for row in grid.iter().rev() {
        for &v in row {
            let level = ((v.abs() / max) * 9.0).round() as usize;
            out.push(ramp[level.min(9)]);
        }
        out.push('\n');
    }
    out
}

fn write_ppm(path: &str, grid: &[Vec<f64>]) -> std::io::Result<()> {
    let (h, w) = (grid.len(), grid[0].len());
    let max = grid
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-12);
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{w} {h}\n255\n")?;
    let mut buf = Vec::with_capacity(w * h * 3);
    for row in grid.iter().rev() {
        for &v in row {
            let g = 255 - ((v.abs() / max) * 255.0).round() as u8;
            buf.extend_from_slice(&[g, g, g]);
        }
    }
    f.write_all(&buf)
}

fn main() {
    let ne = 4;
    let np = 6;
    let mesh = CubedSphere::new(ne);
    let topo = mesh.topology();
    let mut cfg = AdvectionConfig::stable_for(ne, np, 1);
    cfg.dt *= 0.9;
    let basis = GllBasis::new(np);
    let ic = gaussian_blob([1.0, 0.0, 0.0], 0.4);

    let mut solver = SerialSolver::new(topo, cfg);
    solver.set_initial(&ic);
    let mass0 = solver.mass_integral();

    let frames = 6;
    let steps_per_frame = 15;
    println!(
        "advecting a blob on K={} (np={np}), {} frames x {steps_per_frame} steps\n",
        mesh.num_elems(),
        frames
    );
    for frame in 0..frames {
        let grid = to_latlon(ne, &basis, &solver.q, 0, 24, 48);
        let path = format!("/tmp/cubesfc_frame_{frame:02}.ppm");
        write_ppm(&path, &grid).expect("write frame");
        if frame == 0 || frame == frames / 2 || frame + 1 == frames {
            println!("t = {:.3} (frame {frame}, wrote {path}):", solver.time());
            println!("{}", ascii_contour(&grid));
        }
        solver.run(steps_per_frame);
    }
    println!(
        "mass integral drift over the run: {:.2e} (relative)",
        (solver.mass_integral() - mass0).abs() / mass0
    );
    println!("frames in /tmp/cubesfc_frame_*.ppm — the blob circles the equator.");
}
