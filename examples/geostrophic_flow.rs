//! Williamson shallow-water test case 2 on the cubed-sphere — the actual
//! dynamics of the SEAM model the paper benchmarks (its reference [9]).
//!
//! A zonal geostrophically balanced flow is an exact steady state of the
//! shallow water equations; whatever the solver does to it is pure
//! numerical error. We integrate it, report the drift and the volume
//! conservation, and show the spectral convergence that is the selling
//! point of the spectral element method.
//!
//! ```text
//! cargo run --release --example geostrophic_flow
//! ```

use cubesfc::seam::{tc2_initial, SwConfig, SwSolver};
use cubesfc::CubedSphere;

fn main() {
    let ne = 4;
    println!("Williamson TC2 (steady geostrophic flow) on the Ne={ne} cubed-sphere\n");
    println!(
        "{:>4} {:>8} {:>12} {:>14} {:>16}",
        "np", "steps", "model time", "state drift", "volume drift"
    );

    for np in [4usize, 5, 6, 7, 8] {
        let mesh = CubedSphere::new(ne);
        let cfg = SwConfig::test_case_2(ne, np);
        let mut solver = SwSolver::new(mesh.topology(), cfg);
        let (v0, h0) = tc2_initial(1.0, 2.5, cfg.omega, cfg.gravity);
        solver.set_initial(&v0, &h0);

        let initial = solver.state.clone();
        let vol0 = solver.total_volume();
        // Same physical horizon for every order.
        let t_final = SwConfig::test_case_2(ne, 8).dt * 30.0;
        let steps = (t_final / cfg.dt).ceil() as usize;
        solver.run(steps);

        let drift = solver.state.max_abs_diff(&initial);
        let vol_rel = (solver.total_volume() - vol0).abs() / vol0;
        println!(
            "{:>4} {:>8} {:>12.4} {:>14.3e} {:>16.3e}",
            np,
            steps,
            solver.time(),
            drift,
            vol_rel
        );
    }

    println!(
        "\nreading: drift shrinks by orders of magnitude as the polynomial\n\
         degree rises at fixed elements — spectral convergence, the reason\n\
         SEAM uses high-order elements (and why elements, not points, are\n\
         the partitioning atoms)."
    );
}
