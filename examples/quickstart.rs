//! Quickstart: partition a cubed-sphere and inspect the quality report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cubesfc::report::PartitionReport;
use cubesfc::{partition_default, CostModel, CubedSphere, MachineModel, PartitionMethod};

fn main() {
    // The paper's K = 384 resolution: each cube face is an 8×8 array of
    // spectral elements, traversed by a level-3 Hilbert curve.
    let mesh = CubedSphere::new(8);
    println!(
        "cubed-sphere: Ne = {}, K = {} elements",
        mesh.ne(),
        mesh.num_elems()
    );

    // The global curve is one continuous path over all six faces.
    let curve = mesh.curve().expect("Ne = 8 = 2^3 admits a Hilbert curve");
    assert!(curve.is_continuous(mesh.topology()));
    println!(
        "global SFC: visits {} elements, first {:?}, last {:?}",
        curve.len(),
        mesh.locate(curve.elem_at(0)),
        mesh.locate(curve.elem_at(curve.len() - 1)),
    );

    // Partition for 96 processors: 4 elements each, perfectly balanced.
    let nproc = 96;
    let part = partition_default(&mesh, PartitionMethod::Sfc, nproc).unwrap();
    println!(
        "SFC partition for {nproc} processors: sizes min {} / max {}",
        part.part_sizes().iter().min().unwrap(),
        part.part_sizes().iter().max().unwrap()
    );

    // Compare against the METIS-style baselines on the modelled machine.
    let machine = MachineModel::ncar_p690();
    let cost = CostModel::seam_climate();
    println!("\n{}", PartitionReport::table_header());
    for method in [
        PartitionMethod::Sfc,
        PartitionMethod::MetisKway,
        PartitionMethod::MetisTv,
        PartitionMethod::MetisRb,
    ] {
        let r = PartitionReport::compute(&mesh, method, nproc, &machine, &cost).unwrap();
        println!("{}", r.table_row());
    }
}
